"""Tests for the PE and PPU cycle/event models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.pe import PE, PEOpStats
from repro.arch.ppu import PPU
from repro.dataflow.compressed import CompressedRow
from repro.dataflow.ops import MSRCOp, OSRCOp, SRCOp
from repro.pruning.threshold import determine_threshold_from_abs_sum


def _src_op(row, kernel=(1.0, 1.0, 1.0), stride=1):
    kernel = np.asarray(kernel, dtype=np.float64)
    row = np.asarray(row, dtype=np.float64)
    out_len = (row.size - kernel.size) // stride + 1
    return SRCOp(
        kernel_row=kernel,
        input_row=CompressedRow.from_dense(row),
        stride=stride,
        out_len=out_len,
    )


class TestPESRC:
    def test_cycles_are_kernel_load_plus_nnz(self):
        pe = PE(zero_skipping=True)
        row = np.array([0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0])
        _, stats = pe.run(_src_op(row))
        assert stats.processed_operands == 3
        assert stats.cycles == 3 + 3  # K load + nnz
        assert stats.macs == 3 * 3
        assert stats.skipped_operands == 5

    def test_dense_pe_processes_every_position(self):
        pe = PE(zero_skipping=False)
        row = np.array([0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0])
        _, stats = pe.run(_src_op(row))
        assert stats.processed_operands == row.size
        assert stats.skipped_operands == 0

    def test_sparse_and_dense_compute_identical_results(self, rng):
        row = rng.normal(size=12) * (rng.random(12) < 0.5)
        op = _src_op(row, kernel=rng.normal(size=3))
        sparse_result, _ = PE(zero_skipping=True).run(op)
        dense_result, _ = PE(zero_skipping=False).run(op)
        np.testing.assert_allclose(sparse_result, dense_result, atol=1e-12)

    def test_amortized_weight_load_removes_load_cycles(self):
        row = np.array([1.0, 2.0, 3.0, 4.0])
        with_load = PE(zero_skipping=True, amortize_weight_load=False)
        without_load = PE(zero_skipping=True, amortize_weight_load=True)
        _, stats_with = with_load.run(_src_op(row))
        _, stats_without = without_load.run(_src_op(row))
        assert stats_with.cycles == stats_without.cycles + 3

    def test_total_stats_accumulate(self):
        pe = PE()
        row = np.array([1.0, 0.0, 2.0, 0.0, 0.0])
        pe.run(_src_op(row))
        pe.run(_src_op(row))
        assert pe.total_stats.processed_operands == 4

    def test_stats_addition(self):
        a = PEOpStats(1, 2, 3, 4, 5, 6)
        b = PEOpStats(10, 20, 30, 40, 50, 60)
        total = a + b
        assert total.cycles == 11 and total.reg_accesses == 66


class TestPEMSRC:
    def _msrc_op(self, grad, mask, kernel=(1.0, 1.0, 1.0), stride=1):
        grad = np.asarray(grad, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        return MSRCOp(
            kernel_row=np.asarray(kernel, dtype=np.float64),
            grad_row=CompressedRow.from_dense(grad),
            output_mask=mask,
            stride=stride,
            out_len=mask.size,
        )

    def test_fully_masked_operands_are_skipped_for_free(self):
        grad = np.array([1.0, 0.0, 2.0, 0.0])
        mask = np.zeros(6, dtype=bool)
        _, stats = PE(zero_skipping=True).run(self._msrc_op(grad, mask))
        assert stats.processed_operands == 0
        assert stats.cycles == 3  # only the kernel-row load
        assert stats.macs == 0

    def test_partially_masked_counts_only_live_targets(self):
        grad = np.array([1.0, 0.0, 0.0, 0.0])
        mask = np.array([True, False, True, False, False, False])
        _, stats = PE(zero_skipping=True).run(self._msrc_op(grad, mask))
        assert stats.processed_operands == 1
        assert stats.macs == 2  # positions 0 and 2 of the kernel window

    def test_masked_result_is_zero_outside_mask(self, rng):
        grad = rng.normal(size=5) * (rng.random(5) < 0.6)
        mask = rng.random(7) < 0.5
        result, _ = PE(zero_skipping=True).run(self._msrc_op(grad, mask))
        assert np.all(result[~mask] == 0.0)

    def test_dense_pe_ignores_mask(self, rng):
        grad = rng.normal(size=5)
        mask = np.zeros(7, dtype=bool)
        result, stats = PE(zero_skipping=False).run(self._msrc_op(grad, mask))
        assert stats.processed_operands == 5
        assert np.any(result != 0.0)

    def test_mask_length_validation(self):
        with pytest.raises(ValueError):
            MSRCOp(
                kernel_row=np.ones(3),
                grad_row=CompressedRow.from_dense(np.ones(4)),
                output_mask=np.ones(3, dtype=bool),
                stride=1,
                out_len=6,
            )


class TestPEOSRC:
    def _osrc_op(self, input_row, grad_row, kernel_size=3, stride=1):
        return OSRCOp(
            input_row=CompressedRow.from_dense(np.asarray(input_row, dtype=np.float64)),
            grad_row=CompressedRow.from_dense(np.asarray(grad_row, dtype=np.float64)),
            kernel_size=kernel_size,
            stride=stride,
        )

    def test_result_is_row_correlation(self):
        input_row = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        grad_row = np.array([1.0, 1.0, 1.0])
        result, _ = PE(zero_skipping=True).run(self._osrc_op(input_row, grad_row))
        # dw[kw] = sum_ow grad[ow] * input[ow + kw]
        np.testing.assert_allclose(result, [6.0, 9.0, 12.0])

    def test_both_sparsities_reduce_processing(self):
        input_row = np.array([1.0, 0.0, 0.0, 0.0, 5.0])
        grad_row = np.array([0.0, 0.0, 1.0])
        _, stats = PE(zero_skipping=True).run(self._osrc_op(input_row, grad_row))
        # Input position 0 pairs only with grad positions that are zero.
        assert stats.processed_operands == 1
        assert stats.skipped_operands >= 1

    def test_dense_pe_processes_every_input_position(self):
        input_row = np.array([1.0, 0.0, 0.0, 0.0, 5.0])
        grad_row = np.array([0.0, 0.0, 1.0])
        _, stats = PE(zero_skipping=False).run(self._osrc_op(input_row, grad_row))
        assert stats.processed_operands == 5

    def test_sparse_and_dense_agree_numerically(self, rng):
        input_row = rng.normal(size=10) * (rng.random(10) < 0.5)
        grad_row = rng.normal(size=8) * (rng.random(8) < 0.4)
        op = self._osrc_op(input_row, grad_row)
        sparse_result, _ = PE(zero_skipping=True).run(op)
        dense_result, _ = PE(zero_skipping=False).run(op)
        np.testing.assert_allclose(sparse_result, dense_result, atol=1e-12)


class TestPPU:
    def test_relu_and_compression(self):
        ppu = PPU()
        row = np.array([-1.0, 2.0, 0.0, -3.0, 4.0])
        compressed, cycles = ppu.process_row(row, apply_relu=True)
        np.testing.assert_array_equal(compressed.to_dense(), [0.0, 2.0, 0.0, 0.0, 4.0])
        assert cycles == 5
        assert ppu.stats.relu_applied == 5
        assert ppu.stats.values_written == 2

    def test_gradient_accumulators(self, rng):
        ppu = PPU()
        rows = [rng.normal(size=16) for _ in range(4)]
        for row in rows:
            ppu.process_row(row, accumulate_gradients=True)
        stacked = np.concatenate(rows)
        assert ppu.bias_gradient() == pytest.approx(stacked.sum())
        assert ppu.mean_abs_gradient() == pytest.approx(np.abs(stacked).mean())

    def test_threshold_from_ppu_accumulators_matches_reference(self, rng):
        """The PPU's streaming statistics are sufficient for threshold determination."""
        from repro.pruning.threshold import determine_threshold

        ppu = PPU()
        gradient = rng.normal(0.0, 1e-3, size=(8, 64))
        for row in gradient:
            ppu.process_row(row, accumulate_gradients=True)
        streaming = determine_threshold_from_abs_sum(
            ppu.gradient_abs_sum, ppu.gradient_count, 0.9
        )
        reference = determine_threshold(gradient, 0.9)
        assert streaming == pytest.approx(reference, rel=1e-12)

    def test_reset_accumulators(self, rng):
        ppu = PPU()
        ppu.process_row(rng.normal(size=8), accumulate_gradients=True)
        ppu.reset_accumulators()
        assert ppu.gradient_count == 0
        assert ppu.mean_abs_gradient() == 0.0
        assert ppu.bias_gradient() == 0.0

    def test_no_accumulation_by_default(self, rng):
        ppu = PPU()
        ppu.process_row(rng.normal(size=8))
        assert ppu.gradient_count == 0
