"""Exactness tests: row-wise dataflow == dense reference convolution.

These tests establish the central dataflow claim of the paper — that Forward,
GTA and GTW can be decomposed into 1-D row operations without changing the
numerics — by comparing the row-wise reference and the decomposed-op +
PE-execution paths against the im2col kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.pe import PE
from repro.dataflow.decompose import (
    accumulate_forward,
    accumulate_gta,
    accumulate_gtw,
    decompose_forward,
    decompose_gta,
    decompose_gtw,
)
from repro.dataflow.reference import (
    bias_gradient_by_rows,
    forward_by_rows,
    gta_by_rows,
    gtw_by_rows,
    row_convolution,
)
from repro.models.spec import ConvLayerSpec, ConvStructure
from repro.nn import functional as F


def _random_layer_tensors(layer: ConvLayerSpec, rng, input_density=0.5, grad_density=0.3):
    x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
    x *= rng.random(x.shape) < input_density
    w = rng.normal(size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel))
    grad_out = rng.normal(size=(layer.out_channels, layer.out_height, layer.out_width))
    grad_out *= rng.random(grad_out.shape) < grad_density
    mask = rng.random((layer.in_channels, layer.in_height, layer.in_width)) < 0.5
    return x, w, grad_out, mask


class TestRowConvolution:
    def test_simple_case(self):
        out = row_convolution(np.array([1.0, 2.0, 3.0, 4.0]), np.array([1.0, 1.0]), 1, 3)
        np.testing.assert_array_equal(out, [3.0, 5.0, 7.0])

    def test_strided(self):
        out = row_convolution(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), np.array([1.0, 0.0, 1.0]), 2, 2)
        np.testing.assert_array_equal(out, [4.0, 8.0])


class TestReferenceAgainstIm2col:
    def test_forward_matches(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, _, _ = _random_layer_tensors(layer, rng)
        bias = rng.normal(size=layer.out_channels)
        expected, _ = F.conv2d_forward(x[None], w, bias, layer.stride, layer.padding)
        result = forward_by_rows(x, w, bias, layer.stride, layer.padding)
        np.testing.assert_allclose(result, expected[0], atol=1e-12)

    def test_gta_matches(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, mask = _random_layer_tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        expected, _, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        unmasked = gta_by_rows(grad_out, w, x.shape, layer.stride, layer.padding)
        np.testing.assert_allclose(unmasked, expected[0], atol=1e-12)
        masked = gta_by_rows(grad_out, w, x.shape, layer.stride, layer.padding, mask=mask)
        np.testing.assert_allclose(masked, expected[0] * mask, atol=1e-12)

    def test_gtw_matches(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        _, expected_dw, expected_db = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        np.testing.assert_allclose(
            gtw_by_rows(grad_out, x, layer.kernel, layer.stride, layer.padding),
            expected_dw,
            atol=1e-12,
        )
        np.testing.assert_allclose(bias_gradient_by_rows(grad_out), expected_db, atol=1e-12)

    def test_strided_layer_matches(self, strided_conv_layer, rng):
        layer = strided_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        expected, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        np.testing.assert_allclose(
            forward_by_rows(x, w, None, layer.stride, layer.padding), expected[0], atol=1e-12
        )
        expected_di, expected_dw, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        np.testing.assert_allclose(
            gta_by_rows(grad_out, w, x.shape, layer.stride, layer.padding),
            expected_di[0],
            atol=1e-12,
        )
        np.testing.assert_allclose(
            gtw_by_rows(grad_out, x, layer.kernel, layer.stride, layer.padding),
            expected_dw,
            atol=1e-12,
        )

    def test_mask_shape_mismatch_rejected(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        with pytest.raises(ValueError):
            gta_by_rows(grad_out, w, x.shape, 1, 1, mask=np.ones((1, 2, 3), dtype=bool))


class TestDecomposeOpCounts:
    def test_forward_op_count_formula(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, _, _ = _random_layer_tensors(layer, rng)
        ops = decompose_forward(layer, x, w)
        expected = layer.out_channels * layer.out_height * layer.in_channels * layer.kernel
        assert len(ops) == expected

    def test_gta_op_count_formula(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, mask = _random_layer_tensors(layer, rng)
        ops = decompose_gta(layer, grad_out, w, mask)
        expected = layer.in_channels * layer.out_channels * layer.out_height * layer.kernel
        assert len(ops) == expected

    def test_gtw_op_count_formula(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        ops = decompose_gtw(layer, grad_out, x)
        expected = layer.out_channels * layer.in_channels * layer.kernel * layer.out_height
        assert len(ops) == expected

    def test_shape_validation(self, small_conv_layer, rng):
        layer = small_conv_layer
        with pytest.raises(ValueError):
            decompose_forward(layer, rng.normal(size=(1, 2, 3, 4)), rng.normal(size=(4, 3, 3, 3)))
        with pytest.raises(ValueError):
            decompose_forward(
                layer, rng.normal(size=(3, 8, 8)), rng.normal(size=(4, 3, 5, 5))
            )


class TestPEExecutionExactness:
    @pytest.mark.parametrize("zero_skipping", [True, False])
    def test_forward_via_pe(self, small_conv_layer, rng, zero_skipping):
        layer = small_conv_layer
        x, w, _, _ = _random_layer_tensors(layer, rng)
        bias = rng.normal(size=layer.out_channels)
        expected, _ = F.conv2d_forward(x[None], w, bias, layer.stride, layer.padding)
        pe = PE(zero_skipping=zero_skipping)
        ops = decompose_forward(layer, x, w)
        results = [pe.run(op)[0] for op in ops]
        out = accumulate_forward(layer, ops, results, bias=bias)
        np.testing.assert_allclose(out, expected[0], atol=1e-12)

    def test_gta_via_pe_with_mask(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, mask = _random_layer_tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        expected, _, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        pe = PE(zero_skipping=True)
        ops = decompose_gta(layer, grad_out, w, mask)
        results = [pe.run(op)[0] for op in ops]
        grad_input = accumulate_gta(layer, ops, results)
        np.testing.assert_allclose(grad_input, expected[0] * mask, atol=1e-12)

    def test_gta_via_dense_pe_without_mask_skipping(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, mask = _random_layer_tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        expected, _, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        pe = PE(zero_skipping=False)
        ops = decompose_gta(layer, grad_out, w, mask)
        results = [pe.run(op)[0] for op in ops]
        grad_input = accumulate_gta(layer, ops, results)
        # The dense PE ignores the mask: it computes the full gradient.
        np.testing.assert_allclose(grad_input, expected[0], atol=1e-12)

    def test_gtw_via_pe(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        _, expected_dw, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, layer.stride, layer.padding
        )
        pe = PE(zero_skipping=True)
        ops = decompose_gtw(layer, grad_out, x)
        results = [pe.run(op)[0] for op in ops]
        np.testing.assert_allclose(accumulate_gtw(layer, ops, results), expected_dw, atol=1e-12)

    def test_strided_layer_via_pe(self, strided_conv_layer, rng):
        layer = strided_conv_layer
        x, w, grad_out, _ = _random_layer_tensors(layer, rng)
        expected, _ = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        pe = PE(zero_skipping=True)
        ops = decompose_forward(layer, x, w)
        results = [pe.run(op)[0] for op in ops]
        np.testing.assert_allclose(accumulate_forward(layer, ops, results), expected[0], atol=1e-12)

    def test_accumulate_length_mismatch_rejected(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, _, _ = _random_layer_tensors(layer, rng)
        ops = decompose_forward(layer, x, w)
        with pytest.raises(ValueError):
            accumulate_forward(layer, ops, [])
