"""Tests for the compressed sparse row-vector format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataflow.compressed import (
    CompressedFeatureMap,
    CompressedRow,
    compress_feature_map,
    compression_ratio,
)


class TestCompressedRow:
    def test_roundtrip(self, rng):
        row = rng.normal(size=16) * (rng.random(16) < 0.4)
        compressed = CompressedRow.from_dense(row)
        np.testing.assert_array_equal(compressed.to_dense(), row)

    def test_nnz_and_density(self):
        row = np.array([0.0, 1.0, 0.0, 2.0])
        compressed = CompressedRow.from_dense(row)
        assert compressed.nnz == 2
        assert compressed.density == pytest.approx(0.5)
        assert compressed.length == 4

    def test_all_zero_row(self):
        compressed = CompressedRow.from_dense(np.zeros(8))
        assert compressed.nnz == 0
        assert compressed.density == 0.0
        np.testing.assert_array_equal(compressed.to_dense(), np.zeros(8))

    def test_storage_words(self):
        row = np.array([1.0, 0.0, 2.0, 0.0, 3.0, 0.0])
        compressed = CompressedRow.from_dense(row)
        # 3 values + ceil(3/2) offset words = 5 words (< 6 dense words).
        assert compressed.storage_words(offset_packing=2) == 5

    def test_storage_words_invalid_packing(self):
        with pytest.raises(ValueError):
            CompressedRow.from_dense(np.ones(2)).storage_words(0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            CompressedRow.from_dense(np.zeros((2, 2)))

    def test_rejects_inconsistent_construction(self):
        with pytest.raises(ValueError):
            CompressedRow(values=np.ones(2), offsets=np.array([0, 5]), length=3)
        with pytest.raises(ValueError):
            CompressedRow(values=np.ones(2), offsets=np.array([0]), length=4)

    @settings(max_examples=40, deadline=None)
    @given(
        row=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(0, 64),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_property_roundtrip_and_storage_bound(self, row):
        compressed = CompressedRow.from_dense(row)
        np.testing.assert_array_equal(compressed.to_dense(), row)
        assert compressed.nnz == np.count_nonzero(row)
        assert compressed.storage_words() <= int(1.5 * compressed.nnz) + 1


class TestCompressedFeatureMap:
    def test_roundtrip(self, rng):
        fmap = rng.normal(size=(3, 4, 5)) * (rng.random((3, 4, 5)) < 0.3)
        compressed = compress_feature_map(fmap)
        np.testing.assert_array_equal(compressed.to_dense(), fmap)
        assert compressed.nnz == np.count_nonzero(fmap)

    def test_density_and_words(self, rng):
        fmap = np.zeros((2, 2, 4))
        fmap[0, 0, 0] = 1.0
        compressed = compress_feature_map(fmap)
        assert compressed.dense_words == 16
        assert compressed.density == pytest.approx(1 / 16)
        assert compressed.storage_words() < compressed.dense_words

    def test_row_access(self, rng):
        fmap = rng.normal(size=(2, 3, 4))
        compressed = compress_feature_map(fmap)
        np.testing.assert_array_equal(compressed.row(1, 2).to_dense(), fmap[1, 2])

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            compress_feature_map(np.zeros((2, 2)))

    def test_type(self, rng):
        assert isinstance(compress_feature_map(rng.normal(size=(1, 2, 3))), CompressedFeatureMap)


class TestCompressionRatio:
    def test_sparse_map_compresses_well(self, rng):
        fmap = rng.normal(size=(4, 8, 8)) * (rng.random((4, 8, 8)) < 0.1)
        assert compression_ratio(fmap) > 2.0

    def test_dense_map_does_not_compress(self, rng):
        fmap = rng.normal(size=(4, 8, 8)) + 10.0
        assert compression_ratio(fmap) < 1.0

    def test_all_zero_map_is_infinite(self):
        assert compression_ratio(np.zeros((1, 2, 2))) == float("inf")
