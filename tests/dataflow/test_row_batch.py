"""Tests for the structure-of-arrays ``CompressedRowBatch`` layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.compressed import CompressedRow, CompressedRowBatch


def _random_rows(rng, count=12, length=10):
    rows = []
    for _ in range(count):
        row = rng.normal(size=length) * (rng.random(length) < rng.random())
        rows.append(CompressedRow.from_dense(row))
    return rows


class TestFromRows:
    def test_round_trip(self, rng):
        rows = _random_rows(rng)
        batch = CompressedRowBatch.from_rows(rows)
        assert batch.n_rows == len(rows) == len(batch)
        assert batch.nnz == sum(row.nnz for row in rows)
        for index, row in enumerate(rows):
            restored = batch.row(index)
            np.testing.assert_array_equal(restored.values, row.values)
            np.testing.assert_array_equal(restored.offsets, row.offsets)
            assert restored.length == row.length

    def test_iteration_matches_rows(self, rng):
        rows = _random_rows(rng, count=5)
        for original, restored in zip(rows, CompressedRowBatch.from_rows(rows)):
            np.testing.assert_array_equal(original.to_dense(), restored.to_dense())

    def test_mixed_lengths(self, rng):
        rows = [
            CompressedRow.from_dense(rng.normal(size=length))
            for length in (3, 7, 1, 12)
        ]
        batch = CompressedRowBatch.from_rows(rows)
        np.testing.assert_array_equal(batch.lengths, [3, 7, 1, 12])
        with pytest.raises(ValueError):
            batch.to_dense()

    def test_empty_batch(self):
        batch = CompressedRowBatch.from_rows([])
        assert batch.n_rows == 0 and batch.nnz == 0
        assert batch.to_dense().size == 0

    def test_all_zero_rows(self):
        rows = [CompressedRow.from_dense(np.zeros(4)) for _ in range(3)]
        batch = CompressedRowBatch.from_rows(rows)
        assert batch.nnz == 0
        np.testing.assert_array_equal(batch.nnz_per_row, [0, 0, 0])
        np.testing.assert_array_equal(batch.to_dense(), np.zeros((3, 4)))


class TestFromDense:
    def test_matches_from_rows(self, rng):
        matrix = rng.normal(size=(6, 9)) * (rng.random((6, 9)) < 0.5)
        via_dense = CompressedRowBatch.from_dense(matrix)
        via_rows = CompressedRowBatch.from_rows(
            [CompressedRow.from_dense(row) for row in matrix]
        )
        np.testing.assert_array_equal(via_dense.values, via_rows.values)
        np.testing.assert_array_equal(via_dense.offsets, via_rows.offsets)
        np.testing.assert_array_equal(via_dense.row_starts, via_rows.row_starts)
        np.testing.assert_array_equal(via_dense.to_dense(), matrix)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            CompressedRowBatch.from_dense(rng.normal(size=8))


class TestValidationAndHelpers:
    def test_inconsistent_extents_rejected(self):
        with pytest.raises(ValueError):
            CompressedRowBatch(
                values=np.ones(2),
                offsets=np.zeros(2, dtype=np.int64),
                row_starts=np.array([0, 1], dtype=np.int64),  # spans 1, pools hold 2
                lengths=np.array([4], dtype=np.int64),
            )
        with pytest.raises(ValueError):
            CompressedRowBatch(
                values=np.ones(2),
                offsets=np.zeros(2, dtype=np.int64),
                row_starts=np.array([0, 2], dtype=np.int64),
                lengths=np.array([4, 4], dtype=np.int64),  # 2 lengths, 1 row
            )
        with pytest.raises(ValueError):
            CompressedRowBatch(
                values=np.ones(2),
                offsets=np.zeros(3, dtype=np.int64),  # shape mismatch
                row_starts=np.array([0, 2], dtype=np.int64),
                lengths=np.array([4], dtype=np.int64),
            )

    def test_flat_positions(self):
        rows = [
            CompressedRow.from_dense(np.array([0.0, 2.0, 0.0])),
            CompressedRow.from_dense(np.array([5.0, 0.0])),
        ]
        batch = CompressedRowBatch.from_rows(rows)
        # Row 0 occupies dense positions [0, 3); row 1 [3, 5).
        np.testing.assert_array_equal(batch.flat_positions(), [1, 3])
        pooled = np.zeros(5)
        pooled[batch.flat_positions()] = batch.values
        np.testing.assert_array_equal(pooled, [0.0, 2.0, 0.0, 5.0, 0.0])
