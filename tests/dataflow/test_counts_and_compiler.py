"""Tests for the analytic operation counts and the instruction compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.pe import PE
from repro.dataflow.counts import (
    LayerDensities,
    StepKind,
    forward_counts,
    gta_counts,
    gtw_counts,
    layer_counts,
    total_macs,
    total_processed,
)
from repro.dataflow.compiler import (
    compile_forward,
    compile_training_iteration,
    uniform_densities,
)
from repro.dataflow.decompose import decompose_forward, decompose_gta, decompose_gtw
from repro.dataflow.instructions import (
    LoadWeightsInstruction,
    StepInstruction,
    StoreOutputInstruction,
    SyncInstruction,
)
from repro.models.alexnet import alexnet_cifar_spec
from repro.models.spec import ConvLayerSpec, ConvStructure


class TestLayerDensities:
    def test_defaults_are_dense(self):
        dense = LayerDensities.dense()
        assert dense.input_density == 1.0
        assert dense.grad_output_density == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerDensities(input_density=1.5)
        with pytest.raises(ValueError):
            LayerDensities(grad_output_density=-0.1)


class TestCountFormulas:
    def test_dense_forward_macs_match_spec(self, small_conv_layer):
        counts = forward_counts(small_conv_layer, LayerDensities.dense(), sparse=False)
        # window per op = (out_w - 1) * stride + K = in_w + 2 * padding here.
        window = (small_conv_layer.out_width - 1) * small_conv_layer.stride + small_conv_layer.kernel
        expected_ops = (
            small_conv_layer.out_channels
            * small_conv_layer.out_height
            * small_conv_layer.in_channels
            * small_conv_layer.kernel
        )
        assert counts.row_ops == expected_ops
        assert counts.macs == expected_ops * window * small_conv_layer.kernel
        # The padded-window MAC count upper-bounds the exact dense MAC count.
        assert counts.macs >= small_conv_layer.forward_macs

    def test_three_steps_have_same_order_of_magnitude_dense(self, small_conv_layer):
        counts = layer_counts(small_conv_layer, LayerDensities.dense(), sparse=False)
        macs = [counts[k].macs for k in StepKind]
        assert max(macs) / min(macs) < 1.6

    def test_sparse_counts_scale_with_density(self):
        # Padding 0 so the dense padded-row length equals the sparse row
        # length and the density ratios are exact.
        layer = ConvLayerSpec("nopad", 3, 4, 3, 1, 0, 8, 8, ConvStructure.CONV_RELU)
        sparse = LayerDensities(
            input_density=0.5, grad_output_density=0.2, mask_density=0.5,
            grad_input_density=0.5, output_density=0.5,
        )
        dense_fwd = forward_counts(layer, LayerDensities.dense(), sparse=False)
        sparse_fwd = forward_counts(layer, sparse, sparse=True)
        assert sparse_fwd.macs == pytest.approx(dense_fwd.macs * 0.5, rel=1e-9)

        dense_gta = gta_counts(layer, LayerDensities.dense(), sparse=False)
        sparse_gta = gta_counts(layer, sparse, sparse=True)
        # dO density 0.2 and mask density 0.5 both cut MACs.
        assert sparse_gta.macs == pytest.approx(dense_gta.macs * 0.2 * 0.5, rel=1e-9)

        dense_gtw = gtw_counts(layer, LayerDensities.dense(), sparse=False)
        sparse_gtw = gtw_counts(layer, sparse, sparse=True)
        assert sparse_gtw.macs == pytest.approx(dense_gtw.macs * 0.5 * 0.2, rel=1e-9)

    def test_sparse_never_exceeds_dense(self, small_conv_layer, strided_conv_layer):
        densities = LayerDensities(
            input_density=0.4, grad_output_density=0.1, mask_density=0.4,
            grad_input_density=0.3, output_density=0.4,
        )
        for layer in (small_conv_layer, strided_conv_layer):
            sparse = layer_counts(layer, densities, sparse=True)
            dense = layer_counts(layer, LayerDensities.dense(), sparse=False)
            for kind in StepKind:
                assert sparse[kind].macs <= dense[kind].macs + 1e-9
                assert sparse[kind].processed_operands <= dense[kind].processed_operands + 1e-9
                assert sparse[kind].sram_words <= dense[kind].sram_words * 1.6

    def test_mask_skipping_disabled_without_relu_mask(self):
        layer = ConvLayerSpec("p", 4, 4, 1, 1, 0, 8, 8, ConvStructure.CONV_ONLY)
        densities = LayerDensities(grad_output_density=0.5, mask_density=0.1)
        counts = gta_counts(layer, densities, sparse=True)
        # mask_density must be ignored: MACs scale only with dO density.
        dense = gta_counts(layer, LayerDensities.dense(), sparse=False)
        assert counts.macs == pytest.approx(dense.macs * 0.5, rel=1e-9)

    def test_totals_helpers(self, small_conv_layer):
        counts = layer_counts(small_conv_layer, LayerDensities.dense(), sparse=False)
        assert total_macs(counts) == pytest.approx(sum(c.macs for c in counts.values()))
        assert total_processed(counts) == pytest.approx(
            sum(c.processed_operands for c in counts.values())
        )


class TestCountsAgainstDetailedPE:
    """The closed-form counts must agree with brute-force PE execution."""

    def _tensors(self, layer, rng, input_density, grad_density):
        x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
        x *= rng.random(x.shape) < input_density
        w = rng.normal(size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel))
        grad = rng.normal(size=(layer.out_channels, layer.out_height, layer.out_width))
        grad *= rng.random(grad.shape) < grad_density
        return x, w, grad

    def test_dense_forward_processed_operands_exact(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, _ = self._tensors(layer, rng, 1.0, 1.0)
        # Make the input genuinely dense (no random zeros).
        x = rng.normal(size=x.shape) + 10.0
        pe = PE(zero_skipping=False)
        ops = decompose_forward(layer, x, w)
        measured = sum(pe.run(op)[1].processed_operands for op in ops)
        analytic = forward_counts(layer, LayerDensities.dense(), sparse=False)
        # The analytic window model counts the operand window per op; the PE
        # streams the whole padded row.  Both count the same ops and agree to
        # within the padded-row vs window difference.
        assert measured == pytest.approx(analytic.processed_operands, rel=0.05)

    def test_sparse_forward_processed_operands_close(self, small_conv_layer, rng):
        layer = small_conv_layer
        input_density = 0.4
        x, w, _ = self._tensors(layer, rng, input_density, 1.0)
        pe = PE(zero_skipping=True)
        ops = decompose_forward(layer, x, w)
        measured = sum(pe.run(op)[1].processed_operands for op in ops)
        from repro.sparsity.stats import density as measure_density

        analytic = forward_counts(
            layer,
            LayerDensities(input_density=measure_density(x)),
            sparse=True,
        )
        assert measured == pytest.approx(analytic.processed_operands, rel=0.15)

    def test_sparse_gta_macs_close(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad = self._tensors(layer, rng, 0.5, 0.3)
        mask = rng.random((layer.in_channels, layer.in_height, layer.in_width)) < 0.5
        pe = PE(zero_skipping=True)
        ops = decompose_gta(layer, grad, w, mask)
        measured = sum(pe.run(op)[1].macs for op in ops)
        from repro.sparsity.stats import density as measure_density

        analytic = gta_counts(
            layer,
            LayerDensities(
                grad_output_density=measure_density(grad),
                mask_density=float(mask.mean()),
            ),
            sparse=True,
        )
        assert measured == pytest.approx(analytic.macs, rel=0.2)

    def test_sparse_gtw_processed_close(self, small_conv_layer, rng):
        layer = small_conv_layer
        x, w, grad = self._tensors(layer, rng, 0.5, 0.3)
        pe = PE(zero_skipping=True)
        ops = decompose_gtw(layer, grad, x)
        measured = sum(pe.run(op)[1].processed_operands for op in ops)
        from repro.sparsity.stats import density as measure_density

        analytic = gtw_counts(
            layer,
            LayerDensities(
                input_density=measure_density(x),
                grad_output_density=measure_density(grad),
            ),
            sparse=True,
        )
        assert measured == pytest.approx(analytic.processed_operands, rel=0.25)


class TestCompiler:
    def test_forward_program_structure(self):
        spec = alexnet_cifar_spec()
        program = compile_forward(spec)
        steps = program.step_instructions()
        assert len(steps) == spec.num_conv_layers
        assert all(step.step is StepKind.FORWARD for step in steps)

    def test_training_program_order(self):
        spec = alexnet_cifar_spec()
        program = compile_training_iteration(spec)
        steps = program.step_instructions()
        forward_steps = [s for s in steps if s.step is StepKind.FORWARD]
        backward_steps = [s for s in steps if s.step is not StepKind.FORWARD]
        # Forward visits layers first-to-last; backward last-to-first.
        assert [s.layer_name for s in forward_steps] == [l.name for l in spec.conv_layers]
        assert backward_steps[0].layer_name == spec.conv_layers[-1].name
        assert backward_steps[-1].layer_name == spec.conv_layers[0].name
        # GTA comes before GTW for every layer.
        for first, second in zip(backward_steps[::2], backward_steps[1::2]):
            assert first.step is StepKind.GTA
            assert second.step is StepKind.GTW
            assert first.layer_name == second.layer_name

    def test_program_contains_loads_stores_syncs(self):
        program = compile_training_iteration(alexnet_cifar_spec())
        kinds = {type(inst) for inst in program.instructions}
        assert {LoadWeightsInstruction, StepInstruction, StoreOutputInstruction, SyncInstruction} <= kinds

    def test_dense_program_has_more_macs_than_sparse(self):
        spec = alexnet_cifar_spec()
        densities = uniform_densities(spec, input_density=0.4, grad_output_density=0.1)
        sparse = compile_training_iteration(spec, densities, sparse=True)
        dense = compile_training_iteration(spec, densities=None, sparse=False)
        assert sparse.total_macs() < dense.total_macs()

    def test_uniform_densities_keeps_first_layer_input_dense(self):
        spec = alexnet_cifar_spec()
        densities = uniform_densities(spec, input_density=0.3)
        assert densities["conv1"].input_density == 1.0
        assert densities["conv2"].input_density == 0.3

    def test_program_describe_and_lookup(self):
        spec = alexnet_cifar_spec()
        program = compile_training_iteration(spec)
        assert "AlexNet" in program.describe()
        assert program.instructions_for_layer("conv1")
        assert len(program) == len(program.instructions)
