"""Seeded property tests for the closed-form counts helpers.

The analytic tier reuses ``compressed_words``/``skip_factor`` element-wise
over whole design grids, so their scalar algebraic properties — monotonicity
in density, additivity of totals, dense-path equivalence — are load-bearing
beyond the original scalar call sites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.counts import (
    LayerDensities,
    StepKind,
    compressed_words,
    layer_counts,
    skip_factor,
    total_macs,
    total_processed,
)
from repro.models.spec import ConvLayerSpec


@pytest.fixture
def layer() -> ConvLayerSpec:
    return ConvLayerSpec(
        name="conv2",
        in_channels=16,
        out_channels=32,
        kernel=3,
        stride=1,
        padding=1,
        in_height=14,
        in_width=14,
    )


def _uniform(density: float) -> LayerDensities:
    return LayerDensities(
        input_density=density,
        grad_output_density=density,
        mask_density=density,
        grad_input_density=density,
        output_density=density,
    )


class TestHelperProperties:
    def test_skip_factor_monotone_in_density(self, rng):
        densities = np.sort(rng.uniform(0.0, 1.0, size=64))
        for kernel in (1, 3, 5, 7):
            values = skip_factor(densities, kernel)
            assert np.all(np.diff(values) >= 0.0)
            assert np.all((0.0 <= values) & (values <= 1.0))

    def test_skip_factor_edge_cases(self):
        assert skip_factor(0.0, 3) == 0.0
        assert skip_factor(1.0, 3) == 1.0
        # More aligned positions can only raise the hit probability.
        assert skip_factor(0.3, 5) > skip_factor(0.3, 3)

    def test_skip_factor_scalar_and_array_agree(self, rng):
        densities = rng.uniform(0.0, 1.0, size=32)
        vectorized = skip_factor(densities, 3)
        scalars = np.array([skip_factor(float(d), 3) for d in densities])
        # libm pow vs numpy pow may differ in the last ulp.
        assert np.allclose(vectorized, scalars, rtol=1e-14, atol=0.0)

    def test_compressed_words_monotone_and_linear(self, rng):
        values = np.sort(rng.uniform(0.0, 1e6, size=64))
        words = compressed_words(values)
        assert np.all(np.diff(words) >= 0.0)
        # Linear in the value count: one offset per two values.
        assert np.allclose(words, values * 1.5)
        assert compressed_words(0.0) == 0.0

    def test_private_aliases_still_exported(self):
        # Pre-analytic-tier call sites import the underscore names.
        from repro.dataflow.counts import (
            _compressed_words,
            _skip_factor,
            _OFFSET_PACKING,
        )

        assert _compressed_words is compressed_words
        assert _skip_factor is skip_factor
        assert _OFFSET_PACKING == 2.0


class TestLayerCountProperties:
    def test_total_macs_additive_across_steps(self, layer, rng):
        for density in rng.uniform(0.05, 1.0, size=8):
            counts = layer_counts(layer, _uniform(float(density)))
            assert total_macs(counts) == pytest.approx(
                sum(counts[kind].macs for kind in StepKind)
            )
            assert total_processed(counts) == pytest.approx(
                sum(counts[kind].processed_operands for kind in StepKind)
            )

    def test_macs_monotone_in_density(self, layer, rng):
        densities = np.sort(rng.uniform(0.05, 1.0, size=8))
        macs = [
            total_macs(layer_counts(layer, _uniform(float(d)))) for d in densities
        ]
        assert macs == sorted(macs)

    def test_dense_map_equals_sparse_disabled(self, layer):
        # LayerDensities.dense() through the sparse path must count the same
        # MACs as the dense path; traffic differs only by the compressed
        # format, which dense() still pays for the unpadded row view.
        sparse_path = layer_counts(layer, LayerDensities.dense(), sparse=True)
        dense_path = layer_counts(layer, LayerDensities.dense(), sparse=False)
        padded = layer.in_width + 2 * layer.padding
        for kind in StepKind:
            ratio = sparse_path[kind].macs / dense_path[kind].macs
            if kind is StepKind.GTA:
                assert ratio == pytest.approx(1.0)
            else:
                # Forward/GTW dense streams the padding columns too.
                assert ratio == pytest.approx(layer.in_width / padded)

    def test_dense_densities_are_the_default(self):
        assert LayerDensities.dense() == LayerDensities()
