"""Grouped-convolution exactness through the dataflow stack.

Extends the decomposition-exactness tests to grouped/depthwise layers: the
row-wise reference, the decomposed SRC/MSRC/OSRC ops executed on a PE, and
the closed-form operation counts must all agree with the grouped im2col
kernels in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.pe import PE
from repro.dataflow.counts import LayerDensities, forward_counts, gta_counts, gtw_counts
from repro.dataflow.decompose import (
    accumulate_forward,
    accumulate_gta,
    accumulate_gtw,
    decompose_forward,
    decompose_gta,
    decompose_gtw,
)
from repro.dataflow.reference import forward_by_rows, gta_by_rows, gtw_by_rows
from repro.models.spec import ConvLayerSpec, ConvStructure
from repro.nn import functional as F


def grouped_layer(groups: int, in_channels: int = 4, out_channels: int = 6) -> ConvLayerSpec:
    return ConvLayerSpec(
        f"grouped{groups}", in_channels, out_channels, 3, 1, 1, 6, 6,
        ConvStructure.CONV_BN_RELU, groups=groups,
    )


def _tensors(layer: ConvLayerSpec, rng):
    x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
    x *= rng.random(x.shape) < 0.6
    w = rng.normal(
        size=(layer.out_channels, layer.group_in_channels, layer.kernel, layer.kernel)
    )
    grad_out = rng.normal(size=(layer.out_channels, layer.out_height, layer.out_width))
    grad_out *= rng.random(grad_out.shape) < 0.4
    return x, w, grad_out


LAYERS = [grouped_layer(1), grouped_layer(2), grouped_layer(4, 4, 4)]


class TestGroupedReference:
    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_forward_rows_match_im2col(self, layer, rng):
        x, w, _ = _tensors(layer, rng)
        expected, _ = F.conv2d_forward(x[None], w, None, 1, 1, groups=layer.groups)
        result = forward_by_rows(x, w, None, 1, 1, groups=layer.groups)
        np.testing.assert_allclose(result, expected[0], atol=1e-12)

    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_backward_rows_match_im2col(self, layer, rng):
        x, w, grad_out = _tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, 1, 1, groups=layer.groups)
        expected_di, expected_dw, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, 1, 1, groups=layer.groups
        )
        np.testing.assert_allclose(
            gta_by_rows(grad_out, w, x.shape, 1, 1, groups=layer.groups),
            expected_di[0],
            atol=1e-12,
        )
        np.testing.assert_allclose(
            gtw_by_rows(grad_out, x, layer.kernel, 1, 1, groups=layer.groups),
            expected_dw,
            atol=1e-12,
        )


class TestGroupedPEExecution:
    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_forward_via_pe(self, layer, rng):
        x, w, _ = _tensors(layer, rng)
        expected, _ = F.conv2d_forward(x[None], w, None, 1, 1, groups=layer.groups)
        pe = PE(zero_skipping=True)
        ops = decompose_forward(layer, x, w)
        results = [pe.run(op)[0] for op in ops]
        np.testing.assert_allclose(
            accumulate_forward(layer, ops, results), expected[0], atol=1e-12
        )

    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_gta_and_gtw_via_pe(self, layer, rng):
        x, w, grad_out = _tensors(layer, rng)
        _, cols = F.conv2d_forward(x[None], w, None, 1, 1, groups=layer.groups)
        expected_di, expected_dw, _ = F.conv2d_backward(
            grad_out[None], (1, *x.shape), cols, w, 1, 1, groups=layer.groups
        )
        pe = PE(zero_skipping=True)
        gta_ops = decompose_gta(layer, grad_out, w)
        gta_results = [pe.run(op)[0] for op in gta_ops]
        np.testing.assert_allclose(
            accumulate_gta(layer, gta_ops, gta_results), expected_di[0], atol=1e-12
        )
        gtw_ops = decompose_gtw(layer, grad_out, x)
        gtw_results = [pe.run(op)[0] for op in gtw_ops]
        np.testing.assert_allclose(
            accumulate_gtw(layer, gtw_ops, gtw_results), expected_dw, atol=1e-12
        )

    def test_grouped_weight_shape_rejected(self, rng):
        layer = grouped_layer(2)
        x, _, _ = _tensors(layer, rng)
        full_weight = rng.normal(size=(layer.out_channels, layer.in_channels, 3, 3))
        with pytest.raises(ValueError):
            decompose_forward(layer, x, full_weight)


class TestGroupedCounts:
    """The closed-form counts track the decomposed op enumeration exactly."""

    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_row_ops_match_decomposition(self, layer, rng):
        x, w, grad_out = _tensors(layer, rng)
        dense = LayerDensities.dense()
        assert forward_counts(layer, dense).row_ops == len(decompose_forward(layer, x, w))
        assert gta_counts(layer, dense).row_ops == len(decompose_gta(layer, grad_out, w))
        assert gtw_counts(layer, dense).row_ops == len(decompose_gtw(layer, grad_out, x))

    def test_depthwise_counts_scale_down_by_channel_count(self):
        dense_layer = grouped_layer(1, 4, 4)
        depthwise = grouped_layer(4, 4, 4)
        d = LayerDensities.dense()
        assert depthwise.forward_macs * 4 == dense_layer.forward_macs
        assert depthwise.weight_count * 4 == dense_layer.weight_count
        assert (
            forward_counts(depthwise, d, sparse=False).macs * 4
            == forward_counts(dense_layer, d, sparse=False).macs
        )
        assert (
            gta_counts(depthwise, d, sparse=False).row_ops * 4
            == gta_counts(dense_layer, d, sparse=False).row_ops
        )

    def test_grouped_training_macs_consistent(self):
        layer = grouped_layer(2)
        assert layer.training_macs == 3 * layer.forward_macs
        assert layer.gta_macs == layer.forward_macs


class TestGroupedSpecValidation:
    def test_rejects_indivisible_groups(self):
        with pytest.raises(ValueError, match="groups"):
            grouped_layer(3)

    def test_depthwise_flag(self):
        assert grouped_layer(4, 4, 4).is_depthwise
        assert not grouped_layer(2).is_depthwise
        assert not grouped_layer(1).is_depthwise
