"""Seeded-random fuzz: compressed feature-map round-trip and footprint laws.

~100 random (C, H, W, density) draws prove two properties of the compressed
format across the whole input space, not just the hand-picked cases of
``test_compressed.py``:

* **round-trip** — ``compress -> decompress`` reproduces the original tensor
  exactly (including all-zero and fully-dense extremes);
* **monotone footprint** — on a fixed shape, making strictly more positions
  non-zero never shrinks the compressed storage footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.compressed import (
    CompressedRow,
    compress_feature_map,
    compression_ratio,
)

N_DRAWS = 100


def _random_case(rng: np.random.Generator):
    channels = int(rng.integers(1, 9))
    height = int(rng.integers(1, 13))
    width = int(rng.integers(1, 17))
    density = float(rng.uniform(0.0, 1.0))
    values = rng.normal(size=(channels, height, width))
    feature_map = values * (rng.random(values.shape) < density)
    return feature_map, density


@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_round_trip_is_exact(draw):
    rng = np.random.default_rng(9000 + draw)
    feature_map, _ = _random_case(rng)
    compressed = compress_feature_map(feature_map)
    np.testing.assert_array_equal(compressed.to_dense(), feature_map)
    assert compressed.nnz == int(np.count_nonzero(feature_map))
    assert compressed.channels == feature_map.shape[0]
    assert compressed.dense_words == feature_map.size


@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_row_round_trip_and_storage(draw):
    rng = np.random.default_rng(17000 + draw)
    length = int(rng.integers(1, 33))
    row = rng.normal(size=length) * (rng.random(length) < rng.uniform(0, 1))
    compressed = CompressedRow.from_dense(row)
    np.testing.assert_array_equal(compressed.to_dense(), row)
    # storage = nnz values + ceil(nnz / packing) offset words.
    assert compressed.storage_words() == compressed.nnz + int(np.ceil(compressed.nnz / 2))


@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_footprint_monotone_in_density(draw):
    """Zeroing out positions of a map never increases its footprint."""
    rng = np.random.default_rng(31000 + draw)
    feature_map, _ = _random_case(rng)
    # Sparsify a copy further: keep each non-zero with probability ~U(0, 1).
    keep = rng.random(feature_map.shape) < rng.uniform(0.0, 1.0)
    sparser = feature_map * keep
    dense_words = compress_feature_map(feature_map).storage_words()
    sparse_words = compress_feature_map(sparser).storage_words()
    assert sparse_words <= dense_words
    if np.count_nonzero(sparser) == np.count_nonzero(feature_map):
        assert sparse_words == dense_words


def test_extremes_round_trip():
    zeros = np.zeros((3, 4, 5))
    dense = np.ones((3, 4, 5))
    assert compress_feature_map(zeros).storage_words() == 0
    np.testing.assert_array_equal(compress_feature_map(zeros).to_dense(), zeros)
    np.testing.assert_array_equal(compress_feature_map(dense).to_dense(), dense)
    # Fully dense compressed storage is ~1.5x the dense footprint (values +
    # packed offsets, with per-row ceil rounding), so the ratio dips below 1
    # — compression only pays off below ~2/3 density.  Each 5-wide row costs
    # 5 values + ceil(5/2) = 8 words against 5 dense words.
    assert compression_ratio(dense) == pytest.approx(5.0 / 8.0)
    assert compression_ratio(zeros) == float("inf")
