"""Tests for the synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    Dataset,
    make_blob_dataset,
    make_cifar_like,
    make_stripe_dataset,
)


class TestDatasetContainer:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((4, 3, 8)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((4, 3, 8, 8)), np.zeros(5, dtype=int), 2)
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((4, 3, 8, 8)), np.zeros(4, dtype=int), 1)

    def test_len_and_image_shape(self):
        dataset = make_blob_dataset(num_samples=32, image_size=8)
        assert len(dataset) == 32
        assert dataset.image_shape == (3, 8, 8)

    def test_split_fractions(self):
        dataset = make_blob_dataset(num_samples=100)
        train, test = dataset.split(0.75, np.random.default_rng(0))
        assert len(train) == 75
        assert len(test) == 25

    def test_split_rejects_degenerate_fraction(self):
        dataset = make_blob_dataset(num_samples=10)
        with pytest.raises(ValueError):
            dataset.split(0.0)

    def test_batches_cover_all_samples(self):
        dataset = make_blob_dataset(num_samples=50)
        total = sum(len(labels) for _, labels in dataset.batches(16, shuffle=False))
        assert total == 50

    def test_batches_shuffle_changes_order(self):
        dataset = make_blob_dataset(num_samples=64)
        first_ordered = next(iter(dataset.batches(64, shuffle=False)))[1]
        first_shuffled = next(iter(dataset.batches(64, rng=np.random.default_rng(3))))[1]
        assert not np.array_equal(first_ordered, first_shuffled)


class TestGenerators:
    @pytest.mark.parametrize("factory", [make_blob_dataset, make_stripe_dataset, make_cifar_like])
    def test_shapes_and_labels(self, factory):
        dataset = factory(num_samples=40, num_classes=4, image_size=8)
        assert dataset.images.shape == (40, 3, 8, 8)
        assert dataset.labels.shape == (40,)
        assert dataset.labels.min() >= 0
        assert dataset.labels.max() < 4
        assert dataset.num_classes == 4

    @pytest.mark.parametrize("factory", [make_blob_dataset, make_stripe_dataset, make_cifar_like])
    def test_deterministic_given_rng(self, factory):
        a = factory(num_samples=16, rng=np.random.default_rng(5))
        b = factory(num_samples=16, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("factory", [make_blob_dataset, make_stripe_dataset, make_cifar_like])
    def test_normalised_statistics(self, factory):
        dataset = factory(num_samples=64, image_size=8)
        assert abs(dataset.images.mean()) < 1e-8
        assert dataset.images.std() == pytest.approx(1.0, abs=1e-6)

    def test_cifar_like_uses_all_classes(self):
        dataset = make_cifar_like(num_samples=256, num_classes=6, image_size=8)
        assert set(np.unique(dataset.labels)) == set(range(6))

    def test_cifar_like_rejects_single_class(self):
        with pytest.raises(ValueError):
            make_cifar_like(num_classes=1)

    def test_blob_classes_are_separable_by_mean_position(self):
        """Blob classes should be trivially separable - sanity of the task."""
        dataset = make_blob_dataset(num_samples=200, num_classes=2, image_size=16, noise=0.1)
        centroids = []
        ys, xs = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        for label in (0, 1):
            images = dataset.images[dataset.labels == label].mean(axis=(0, 1))
            images = images - images.min()
            weight = images / images.sum()
            centroids.append((float((ys * weight).sum()), float((xs * weight).sum())))
        distance = np.hypot(
            centroids[0][0] - centroids[1][0], centroids[0][1] - centroids[1][1]
        )
        assert distance > 2.0
