"""``repro top`` rendering, per-interval rates, and the stats --watch deltas."""

from __future__ import annotations

import argparse

import pytest

from repro.serve.cli import _format_stats, cmd_top
from repro.serve.top import format_rates, job_rates, render_top

from test_obs_endpoints import StageExecutor, _Service, _request


def _stats(submitted=0, done=0, uptime=120.0):
    return {
        "version": "1.0",
        "uptime_s": uptime,
        "queue": {"queued": 1, "running": 2, "done": done},
        "jobs": {"submitted": submitted, "claimed": done, "done": done},
        "scheduler": {"workers_alive": 2, "concurrency": 2},
        "stages": {"simulate": {"count": 4, "p50": 0.1, "p95": 0.2}},
        "caches": {"stage": {"hits": 3, "misses": 1, "hit_rate": 0.75}},
    }


def _health():
    return {
        "workers": [
            {"id": "host:100", "heartbeat_age_s": 1.2, "current_job": "abc123def",
             "jobs_done": 5, "jobs_failed": 1},
            {"id": "host:200", "heartbeat_age_s": 95.0, "current_job": None,
             "jobs_done": 2, "jobs_failed": 0},
        ],
        "fleet": {
            "size": 2, "alive": 2,
            "processes": [{"pid": 100, "alive": True, "restarts": 0},
                          {"pid": 200, "alive": True, "restarts": 1}],
        },
    }


class TestJobRates:
    def test_rates_are_deltas_over_the_interval(self):
        rates = job_rates(_stats(submitted=10, done=6),
                          _stats(submitted=4, done=2), interval=2.0)
        assert rates["submitted"] == pytest.approx(3.0)
        assert rates["done"] == pytest.approx(2.0)

    def test_first_frame_has_no_rates(self):
        assert job_rates(_stats(), None, 2.0) == {}
        assert job_rates(_stats(), _stats(), None) == {}

    def test_counter_reset_clamps_to_zero(self):
        """A restarted service's counters going backwards is not a negative rate."""
        rates = job_rates(_stats(submitted=1), _stats(submitted=50), interval=1.0)
        assert rates["submitted"] == 0.0

    def test_format_rates(self):
        assert format_rates({}) == ""
        assert format_rates({"done": 1.5}) == "done=1.50/s"


class TestRenderTop:
    def test_frame_shows_queue_workers_fleet_and_stages(self):
        frame = render_top(_stats(done=3), _health(), now=1700000000.0)
        assert "repro top" in frame
        assert "queued=1" in frame and "running=2" in frame
        assert "host:100" in frame and "abc123def"[:12] in frame
        assert "2/2 alive" in frame
        assert "pid=100:up" in frame
        assert "pid=200:up(1 respawns)" in frame
        assert "simulate" in frame and "0.200s" in frame
        assert "hit_rate=75%" in frame

    def test_first_frame_says_collecting(self):
        frame = render_top(_stats(), _health())
        assert "collecting" in frame

    def test_second_frame_shows_rates(self):
        frame = render_top(
            _stats(submitted=8), _health(),
            previous=_stats(submitted=4), interval=2.0,
        )
        assert "submitted=2.00/s" in frame
        assert "collecting" not in frame

    def test_minimal_snapshots_render_without_error(self):
        frame = render_top({}, {})
        assert "repro top" in frame


class TestStatsWatchDeltas:
    def test_format_stats_without_previous_has_no_rate_line(self):
        assert "rate:" not in _format_stats(_stats())

    def test_format_stats_with_previous_shows_rates(self):
        text = _format_stats(_stats(submitted=10), _stats(submitted=5), 5.0)
        assert "rate:" in text
        assert "submitted=1.00/s" in text


class TestCmdTopOnce:
    def test_once_prints_one_frame_against_a_live_service(self, tmp_path, capsys):
        service = _Service(tmp_path, execute=StageExecutor(), start=True)
        try:
            job = service.client.submit(_request())["job"]
            service.client.wait(job["id"], timeout=30.0, poll=0.02)
            args = argparse.Namespace(
                url=service.server.url, interval=0.1, once=True
            )
            assert cmd_top(args) == 0
        finally:
            service.close()
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "done=1" in out

    def test_once_with_no_service_exits_2(self, capsys):
        args = argparse.Namespace(
            url="http://127.0.0.1:1", interval=0.1, once=True
        )
        assert cmd_top(args) == 2
        assert "error:" in capsys.readouterr().err
