"""Lease mechanics: heartbeats, reaping, owner guards, v1->v2 migration."""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.api import ExperimentRequest, ExperimentResult
from repro.serve.store import (
    DONE,
    FAILED,
    JobStore,
    QUEUED,
    RUNNING,
    default_worker_id,
)


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


def _result(request: ExperimentRequest) -> ExperimentResult:
    return ExperimentResult(
        experiment=request.experiment,
        request=request,
        payload={"ok": True},
        summary="done",
    )


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "serve.db") as job_store:
        yield job_store


class TestClaimStampsLease:
    def test_claim_records_worker_and_deadline(self, store):
        store.submit(_request())
        now = time.time()
        job = store.claim_next(worker_id="w1", lease_ttl=30.0, now=now)
        assert job.state == RUNNING
        assert job.worker_id == "w1"
        assert job.lease_expires_at == pytest.approx(now + 30.0)
        assert job.heartbeat_at == pytest.approx(now)
        assert not job.lease_expired(now=now + 29.0)
        assert job.lease_expired(now=now + 31.0)

    def test_default_worker_id_is_host_pid(self, store):
        host, _, pid = default_worker_id().rpartition(":")
        assert host
        assert pid.isdigit()  # CI parses the pid out to SIGKILL the owner


class TestHeartbeat:
    def test_heartbeat_extends_lease(self, store):
        store.submit(_request())
        now = time.time()
        job = store.claim_next(worker_id="w1", lease_ttl=10.0, now=now)
        assert store.heartbeat(job.id, "w1", lease_ttl=10.0, now=now + 8.0)
        extended = store.get(job.id)
        assert extended.lease_expires_at == pytest.approx(now + 18.0)
        assert extended.heartbeat_at == pytest.approx(now + 8.0)
        # The extended lease survives past the original deadline.
        assert list(store.reap_expired(now=now + 12.0)) == []
        assert store.get(job.id).state == RUNNING

    def test_heartbeat_from_wrong_worker_fails(self, store):
        store.submit(_request())
        job = store.claim_next(worker_id="w1", lease_ttl=10.0)
        assert not store.heartbeat(job.id, "imposter", lease_ttl=10.0)
        assert store.get(job.id).worker_id == "w1"

    def test_heartbeat_after_reap_reports_lease_lost(self, store):
        store.submit(_request())
        now = time.time()
        job = store.claim_next(worker_id="w1", lease_ttl=1.0, now=now)
        assert store.reap_expired(now=now + 2.0).requeued == [job.id]
        assert not store.heartbeat(job.id, "w1", lease_ttl=1.0, now=now + 2.5)


class TestReaper:
    def test_reap_requeues_only_expired_leases(self, store):
        store.submit(_request(rate=0.9))
        store.submit(_request(rate=0.5))
        now = time.time()
        dead = store.claim_next(worker_id="w-dead", lease_ttl=1.0, now=now)
        live = store.claim_next(worker_id="w-live", lease_ttl=120.0, now=now)
        reaped = store.reap_expired(now=now + 5.0)
        assert reaped.requeued == [dead.id]
        assert reaped.quarantined == []
        requeued = store.get(dead.id)
        assert requeued.state == QUEUED
        assert requeued.worker_id is None
        assert requeued.lease_expires_at is None
        assert requeued.executions == 1  # execution history survives the reap
        assert requeued.requeue_count == 1  # ...and counts toward the cap
        assert store.get(live.id).state == RUNNING
        assert store.get(live.id).worker_id == "w-live"

    def test_reaped_job_is_reclaimable(self, store):
        store.submit(_request())
        now = time.time()
        first = store.claim_next(worker_id="w1", lease_ttl=1.0, now=now)
        store.reap_expired(now=now + 2.0)
        second = store.claim_next(worker_id="w2", lease_ttl=30.0, now=now + 2.0)
        assert second.id == first.id
        assert second.worker_id == "w2"
        assert second.executions == 2


class TestOwnerGuard:
    def test_late_mark_done_from_reaped_worker_is_discarded(self, store):
        """The acceptance property: a reaped worker cannot clobber the job."""
        request = _request()
        store.submit(request)
        now = time.time()
        job = store.claim_next(worker_id="w-slow", lease_ttl=1.0, now=now)
        store.reap_expired(now=now + 2.0)
        reclaimed = store.claim_next(
            worker_id="w-fast", lease_ttl=30.0, now=now + 2.0
        )
        assert reclaimed.worker_id == "w-fast"
        # The original worker wakes up and reports its stale result.
        after = store.mark_done(job.id, _result(request), worker_id="w-slow")
        assert after.state == RUNNING  # unchanged: w-fast still owns it
        assert after.worker_id == "w-fast"
        assert after.result() is None
        # The current owner's result lands normally.
        finished = store.mark_done(job.id, _result(request), worker_id="w-fast")
        assert finished.state == DONE
        assert finished.result() is not None

    def test_late_mark_failed_from_reaped_worker_is_discarded(self, store):
        store.submit(_request())
        now = time.time()
        job = store.claim_next(worker_id="w-slow", lease_ttl=1.0, now=now)
        store.reap_expired(now=now + 2.0)
        store.claim_next(worker_id="w-fast", lease_ttl=30.0, now=now + 2.0)
        after = store.mark_failed(job.id, "stale failure", worker_id="w-slow")
        assert after.state == RUNNING
        assert after.error is None

    def test_unguarded_mark_done_still_works(self, store):
        """Legacy callers (no worker_id) keep the old unconditional write."""
        request = _request()
        store.submit(request)
        job = store.claim_next(worker_id="w1", lease_ttl=30.0)
        finished = store.mark_done(job.id, _result(request))
        assert finished.state == DONE

    def test_guarded_mark_failed_terminal_path(self, store):
        store.submit(_request())
        job = store.claim_next(worker_id="w1", lease_ttl=30.0)
        failed = store.mark_failed(job.id, "boom", worker_id="w1")
        assert failed.state == FAILED
        assert failed.error == "boom"


def _build_v1_database(path) -> None:
    """A database exactly as the pre-lease (schema v1) store wrote it."""
    conn = sqlite3.connect(str(path))
    conn.executescript(
        """
        CREATE TABLE jobs (
            id          TEXT PRIMARY KEY,
            experiment  TEXT NOT NULL,
            request     TEXT NOT NULL,
            state       TEXT NOT NULL,
            priority    INTEGER NOT NULL DEFAULT 0,
            created_at  REAL NOT NULL,
            started_at  REAL,
            finished_at REAL,
            not_before  REAL NOT NULL DEFAULT 0,
            executions  INTEGER NOT NULL DEFAULT 0,
            max_retries INTEGER NOT NULL DEFAULT 0,
            retry_base  INTEGER NOT NULL DEFAULT 0,
            error       TEXT,
            result      TEXT,
            timings     TEXT NOT NULL DEFAULT '{}'
        );
        CREATE INDEX idx_jobs_state ON jobs (state, not_before, priority);
        CREATE TABLE submissions (
            id           INTEGER PRIMARY KEY AUTOINCREMENT,
            job_id       TEXT NOT NULL REFERENCES jobs (id),
            submitted_at REAL NOT NULL,
            source       TEXT
        );
        """
    )
    request = _request()
    now = time.time()
    conn.execute(
        "INSERT INTO jobs (id, experiment, request, state, created_at,"
        " started_at, executions) VALUES (?, ?, ?, ?, ?, ?, ?)",
        (
            request.content_hash,
            request.experiment,
            request.to_json(indent=None),
            RUNNING,  # interrupted mid-run under the old schema
            now,
            now,
            1,
        ),
    )
    conn.execute(
        "INSERT INTO submissions (job_id, submitted_at) VALUES (?, ?)",
        (request.content_hash, now),
    )
    conn.execute("PRAGMA user_version=1")
    conn.commit()
    conn.close()


class TestMigration:
    def test_v1_database_gains_lease_columns(self, tmp_path):
        path = tmp_path / "v1.db"
        _build_v1_database(path)
        with JobStore(path) as store:
            version = store._conn.execute("PRAGMA user_version").fetchone()[0]
            assert version == 4
            job = store.get(_request().content_hash)
            assert job.state == RUNNING
            assert job.worker_id is None
            assert job.lease_expires_at is None
            # The interrupted lease-less row is recoverable.
            assert store.recover() == 1
            assert store.get(job.id).state == QUEUED
            # And claimable with a lease under the new schema.
            claimed = store.claim_next(worker_id="w1", lease_ttl=30.0)
            assert claimed.id == job.id
            assert claimed.worker_id == "w1"

    def test_migrated_database_reopens_cleanly(self, tmp_path):
        path = tmp_path / "v1.db"
        _build_v1_database(path)
        with JobStore(path):
            pass
        # Second open: the idempotent migration must not trip on the
        # already-added columns.
        with JobStore(path) as store:
            assert store.counts()["running"] == 1

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version=9")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 9"):
            JobStore(path)


class TestWorkerRegistry:
    def test_register_heartbeat_and_list(self, store):
        now = time.time()
        store.register_worker("host:1", now=now)
        store.register_worker("host:2", now=now)
        store.worker_heartbeat("host:1", current_job="abc123", now=now + 5.0)
        workers = {w["id"]: w for w in store.list_workers(now=now + 5.0)}
        assert set(workers) == {"host:1", "host:2"}
        assert workers["host:1"]["current_job"] == "abc123"
        assert workers["host:1"]["heartbeat_age_s"] == pytest.approx(0.0)
        assert workers["host:2"]["heartbeat_age_s"] == pytest.approx(5.0)

    def test_finished_counters_and_deregister(self, store):
        store.register_worker("host:1")
        store.worker_finished("host:1", ok=True)
        store.worker_finished("host:1", ok=False)
        (worker,) = store.list_workers()
        assert worker["jobs_done"] == 1
        assert worker["jobs_failed"] == 1
        store.deregister_worker("host:1")
        assert store.list_workers() == []

    def test_prune_drops_silent_workers(self, store):
        now = time.time()
        store.register_worker("host:dead", now=now - 1000.0)
        store.register_worker("host:live", now=now)
        assert store.prune_workers(max_age=300.0, now=now) == 1
        (worker,) = store.list_workers()
        assert worker["id"] == "host:live"
