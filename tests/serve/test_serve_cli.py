"""CLI verbs: ``repro serve`` drain, ``submit --wait`` exit codes, status."""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.api import (
    EXPERIMENTS,
    ExperimentReport,
    Pipeline,
    RunOptions,
    Stage,
    register_experiment,
)
from repro.cli import main
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import JobStore


def _register_test_experiments() -> None:
    """Experiments exercising the failure/timeout paths (idempotent)."""
    if "explode-test" not in EXPERIMENTS:
        @register_experiment("explode-test", description="always fails (test)")
        def _build_explode(request) -> Pipeline:
            def _boom(ctx):
                raise RuntimeError("synthetic pipeline failure")

            return Pipeline("explode-test", [Stage("report", _boom)])

    if "sleepy-test" not in EXPERIMENTS:
        @register_experiment("sleepy-test", description="sleeps 3s (test)")
        def _build_sleepy(request) -> Pipeline:
            def _sleep(ctx):
                time.sleep(3.0)
                return ExperimentReport(payload={}, summary="slept")

            return Pipeline("sleepy-test", [Stage("report", _sleep)])


_register_test_experiments()


@pytest.fixture
def service(tmp_path):
    """A real service (default executor) on an ephemeral port."""
    store = JobStore(tmp_path / "serve.db")
    scheduler = Scheduler(
        store, options=RunOptions(use_cache=False), poll_interval=0.02
    )
    scheduler.start()
    server = ExperimentServer(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    scheduler.stop(timeout=10.0)
    store.close()


def _submit(service, *args: str) -> int:
    return main(["submit", *args, "--url", service.url])


class TestSubmitExitCodes:
    def test_wait_done_exits_zero_and_prints_summary(self, service, capsys):
        code = _submit(
            service, "ablate-fifo", "--smoke", "--wait", "--timeout", "120"
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "queued (new job)" in out
        assert "depth" in out  # the harness summary table made it back
        assert "done in" in out

    def test_second_identical_submit_reports_dedup(self, service, capsys):
        assert _submit(service, "ablate-fifo", "--smoke", "--wait",
                       "--timeout", "120") == 0
        capsys.readouterr()
        code = _submit(service, "ablate-fifo", "--smoke", "--wait",
                       "--timeout", "120")
        out = capsys.readouterr().out
        assert code == 0
        assert "deduped (attached to existing job)" in out
        assert "submissions=2 executions=1" in out

    def test_wait_failed_exits_one(self, service, capsys):
        code = _submit(service, "explode-test", "--wait", "--timeout", "60")
        captured = capsys.readouterr()
        assert code == 1
        assert "failed" in captured.err
        assert "synthetic pipeline failure" in captured.err

    def test_wait_timeout_exits_124(self, service):
        code = _submit(
            service, "sleepy-test", "--wait", "--timeout", "0.3"
        )
        assert code == 124

    def test_without_wait_returns_immediately(self, service, capsys):
        code = _submit(service, "sleepy-test")
        assert code == 0
        assert "queued" in capsys.readouterr().out

    def test_unknown_experiment_exits_two(self, service, capsys):
        code = _submit(service, "not-an-experiment", "--wait")
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unreachable_service_exits_two(self, capsys):
        code = main(["submit", "ablate-fifo", "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestStatusAndCancel:
    def test_status_lists_jobs_and_health(self, service, capsys):
        assert _submit(service, "ablate-fifo", "--smoke", "--wait",
                       "--timeout", "120") == 0
        capsys.readouterr()
        code = main(["status", "--url", service.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "service up" in out
        assert "done=1" in out
        assert "ablate-fifo" in out

    def test_status_single_job_shows_timings(self, service, capsys):
        assert _submit(service, "ablate-fifo", "--smoke", "--wait",
                       "--timeout", "120") == 0
        capsys.readouterr()
        job_id = service.store.list_jobs()[0].id
        code = main(["status", job_id[:12], "--url", service.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "prune" in out and "report" in out  # per-stage timings
        assert "depth" in out  # stored summary

    def test_status_unreachable_exits_two(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:9"]) == 2

    def test_cancel_queued_job(self, tmp_path, capsys):
        # A service that never drains, so the job stays cancellable.
        store = JobStore(tmp_path / "idle.db")
        scheduler = Scheduler(store, options=RunOptions(use_cache=False))
        server = ExperimentServer(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(["submit", "ablate-fifo", "--smoke",
                         "--url", server.url]) == 0
            capsys.readouterr()
            job_id = store.list_jobs()[0].id
            assert main(["cancel", job_id[:12], "--url", server.url]) == 0
            assert "cancelled" in capsys.readouterr().out
            # A second cancel finds the job already terminal: exit 1.
            assert main(["cancel", job_id[:12], "--url", server.url]) == 1
        finally:
            server.shutdown()
            server.server_close()
            store.close()

    def test_cancel_unknown_job_exits_two(self, service, capsys):
        assert main(["cancel", "ffff00001111", "--url", service.url]) == 2
        assert "no job matches" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_renders_snapshot(self, service, capsys):
        assert _submit(service, "ablate-fifo", "--smoke", "--wait",
                       "--timeout", "120") == 0
        capsys.readouterr()
        code = main(["stats", "--url", service.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "service v" in out
        assert "queue:" in out and "done=1" in out
        assert "jobs:" in out and "submitted=" in out
        assert "workers_alive=1" in out
        # The ablation pipeline's stages show with quantiles.
        assert "prune" in out and "p50" in out

    def test_stats_json_round_trips(self, service, capsys):
        import json

        code = main(["stats", "--json", "--url", service.url])
        out = capsys.readouterr().out
        assert code == 0
        stats = json.loads(out)
        assert {"queue", "jobs", "scheduler", "stages", "caches"} <= set(stats)

    def test_stats_unreachable_exits_two(self, capsys):
        assert main(["stats", "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach" in capsys.readouterr().err


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestServeCommand:
    def test_serve_executes_jobs_and_drains_on_sigterm(self, tmp_path, capsys):
        """The acceptance loop, in-process: serve -> submit -> SIGTERM drain."""
        from repro.serve.client import ServeClient

        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        outcome: dict[str, object] = {}

        def _drive() -> None:
            client = ServeClient(url)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    client.health()
                    break
                except Exception:
                    time.sleep(0.05)
            try:
                job = client.submit(_smoke_request())["job"]
                outcome["job"] = client.wait(job["id"], timeout=60.0, poll=0.05)
            finally:
                os.kill(os.getpid(), signal.SIGTERM)

        def _smoke_request():
            from repro.api import ExperimentRequest
            from repro.eval.common import ExperimentScale

            return ExperimentRequest(
                experiment="ablate-fifo", scale=ExperimentScale.preset("smoke")
            )

        driver = threading.Thread(target=_drive, daemon=True)
        driver.start()
        code = main(
            [
                "serve",
                "--port", str(port),
                "--db", str(tmp_path / "serve.db"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        driver.join(timeout=30.0)
        out = capsys.readouterr().out
        assert code == 0
        assert "listening on" in out
        assert "drained cleanly" in out
        assert outcome["job"]["state"] == "done"

    def test_port_conflict_exits_two_before_touching_the_queue(
        self, tmp_path, capsys
    ):
        """A second serve on a taken port must die at bind time, exit 2."""
        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            code = main(
                ["serve", "--port", str(port), "--db", str(tmp_path / "x.db")]
            )
        assert code == 2
        assert "cannot bind" in capsys.readouterr().err
