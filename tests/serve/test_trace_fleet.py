"""Distributed tracing across real processes: one trace id, many pids.

The tentpole acceptance property lives here: a job submitted in this process
and executed by a *separate* worker process yields one merged trace holding
spans from both pids under the job's single trace id — including the case
where the worker is SIGKILL'd mid-job and only its spooled claim marker
survives as evidence.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import ExperimentRequest
from repro.obs import trace_context, trace_span
from repro.obs.sink import (
    ProcessTelemetry,
    merge_trace,
    obs_dir_for,
    read_spans,
)
from repro.obs.trace import TraceBuffer
from repro.serve.store import DONE, JobStore

SRC = Path(__file__).resolve().parents[2] / "src"

# A real worker process with its telemetry agent: claims one job, executes a
# stub, spools its spans, exits.
_WORKER_SCRIPT = """
import sys
from repro.api.request import ExperimentResult
from repro.obs.sink import ProcessTelemetry
from repro.serve.store import JobStore
from repro.serve.worker import Worker

db, worker_id = sys.argv[1], sys.argv[2]
telemetry = ProcessTelemetry(db, worker_id=worker_id, snapshot_interval=0).start()

def execute(req, options, on_stage):
    on_stage("simulate", 0.01)
    return ExperimentResult(
        experiment=req.experiment, request=req, payload={}, summary="ok"
    )

with JobStore(db) as store:
    worker = Worker(
        store, worker_id=worker_id, lease_ttl=30.0, poll_interval=0.05,
        execute=execute,
    )
    executed = worker.run(max_jobs=1, idle_exit=30.0)
telemetry.stop()
sys.exit(0 if executed == 1 else 3)
"""

# A worker that claims (spooling the claim marker synchronously), announces,
# then hangs in execute until SIGKILL'd — the spool is its only testimony.
_DOOMED_SCRIPT = """
import sys, time
from repro.obs.sink import ProcessTelemetry
from repro.serve.store import JobStore
from repro.serve.worker import Worker

db = sys.argv[1]
telemetry = ProcessTelemetry(db, worker_id="w-doomed", snapshot_interval=0).start()

def execute(req, options, on_stage):
    print("executing", flush=True)
    time.sleep(600)

with JobStore(db) as store:
    worker = Worker(
        store, worker_id="w-doomed", lease_ttl=2.0, poll_interval=0.05,
        execute=execute,
    )
    worker.run(max_jobs=1)
"""


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


def _python_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestMergedFleetTrace:
    def test_one_trace_spans_submitter_and_worker_processes(self, tmp_path):
        db = tmp_path / "fleet.db"
        buffer = TraceBuffer()
        telemetry = ProcessTelemetry(
            db, worker_id="frontend", snapshot_interval=0, buffer=buffer
        )
        with telemetry, JobStore(db) as store:
            # The submitter's side of the trace, exactly as the HTTP
            # front-end records it.
            job, _ = store.submit(_request())
            assert job.trace_id
            with trace_context(trace_id=job.trace_id, job_id=job.id):
                with trace_span("http.submit", buffer=buffer):
                    pass

            worker = subprocess.run(
                [sys.executable, "-c", _WORKER_SCRIPT, str(db), "host:worker"],
                env=_python_env(),
                timeout=120,
            )
            assert worker.returncode == 0
            finished = store.get(job.id)
            assert finished.state == DONE

        spans = read_spans(obs_dir_for(db), trace_id=job.trace_id)
        names = {span["name"] for span in spans}
        assert {"http.submit", "worker.claim", "worker.execute"} <= names
        # Every span carries the one trace id...
        assert {span["trace_id"] for span in spans} == {job.trace_id}
        # ...and they come from at least two distinct processes.
        pids = {span["pid"] for span in spans}
        assert os.getpid() in pids
        assert len(pids) >= 2

        document = merge_trace(spans, job=finished.to_dict(include_result=False))
        meta = document["metadata"]
        assert meta["trace_id"] == job.trace_id
        assert len(meta["pids"]) >= 2
        # The synthetic queue-wait equals the store's own measurement.
        assert meta["queue_wait_s"] == pytest.approx(
            finished.started_at - finished.created_at, abs=1e-6
        )
        assert any(
            event["name"] == "queue.wait" for event in document["traceEvents"]
        )

    def test_sigkilled_worker_leaves_its_claim_in_the_trace(self, tmp_path):
        """The spool is crash forensics: the claim marker outlives SIGKILL."""
        db = tmp_path / "doomed.db"
        with JobStore(db) as store:
            job, _ = store.submit(_request(rate=0.5))

        victim = subprocess.Popen(
            [sys.executable, "-c", _DOOMED_SCRIPT, str(db)],
            env=_python_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = victim.stdout.readline()  # "executing": claim span spooled
            assert line.strip() == "executing"
            victim.kill()
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        spans = read_spans(obs_dir_for(db), trace_id=job.trace_id)
        claims = [span for span in spans if span["name"] == "worker.claim"]
        assert len(claims) == 1
        assert claims[0]["worker_id"] == "w-doomed"
        assert claims[0]["pid"] == victim.pid
        assert claims[0]["job_id"] == job.id
        # The execute span never closed, so it must NOT be in the spool.
        assert not any(span["name"] == "worker.execute" for span in spans)
