"""Schema migrations v1/v2/v3 -> v4 and corrupt-database recovery."""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.api import ExperimentRequest
from repro.serve.store import JobStore, QUEUED, RUNNING

from test_lease import _build_v1_database  # sibling module, same dir


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


def _user_version(store: JobStore) -> int:
    return store._conn.execute("PRAGMA user_version").fetchone()[0]


def _build_v2_database(path) -> None:
    """A v1 database plus the lease columns — exactly what v2 wrote."""
    _build_v1_database(path)
    conn = sqlite3.connect(str(path))
    for ddl in (
        "ALTER TABLE jobs ADD COLUMN worker_id TEXT",
        "ALTER TABLE jobs ADD COLUMN lease_expires_at REAL",
        "ALTER TABLE jobs ADD COLUMN heartbeat_at REAL",
    ):
        conn.execute(ddl)
    conn.execute(
        "UPDATE jobs SET worker_id='w-old', lease_expires_at=?, heartbeat_at=?",
        (time.time() - 100.0, time.time() - 100.0),
    )
    conn.execute("PRAGMA user_version=2")
    conn.commit()
    conn.close()


def _build_v3_database(path) -> None:
    """A v2 database plus the quarantine/deadline columns — v3's shape."""
    _build_v2_database(path)
    conn = sqlite3.connect(str(path))
    for ddl in (
        "ALTER TABLE jobs ADD COLUMN requeue_count INTEGER NOT NULL DEFAULT 0",
        "ALTER TABLE jobs ADD COLUMN deadline_s REAL",
        "ALTER TABLE jobs ADD COLUMN complete_count INTEGER NOT NULL DEFAULT 0",
    ):
        conn.execute(ddl)
    conn.execute("PRAGMA user_version=3")
    conn.commit()
    conn.close()


class TestMigrationLadder:
    """Every starting version lands on the same v4 shape, idempotently."""

    def test_fresh_database_is_created_at_v4(self, tmp_path):
        with JobStore(tmp_path / "fresh.db") as store:
            assert _user_version(store) == 4
            job, _ = store.submit(_request())
            assert job.requeue_count == 0
            assert job.deadline_s is None
            assert job.complete_count == 0
            # v4: every fresh submission is born with a trace id.
            assert job.trace_id is not None and len(job.trace_id) == 32

    def test_v1_database_reaches_v4(self, tmp_path):
        path = tmp_path / "v1.db"
        _build_v1_database(path)
        with JobStore(path) as store:
            assert _user_version(store) == 4
            job = store.get(_request().content_hash)
            assert job.requeue_count == 0
            assert job.complete_count == 0
            assert job.trace_id is None  # pre-tracing rows stay NULL

    def test_v2_database_reaches_v4_and_keeps_lease_state(self, tmp_path):
        path = tmp_path / "v2.db"
        _build_v2_database(path)
        with JobStore(path) as store:
            assert _user_version(store) == 4
            job = store.get(_request().content_hash)
            assert job.state == RUNNING
            assert job.worker_id == "w-old"  # v2 data survived
            assert job.requeue_count == 0  # v3 columns defaulted
            assert job.trace_id is None  # v4 column defaulted
            # The expired v2 lease behaves under the new quarantine reaper.
            outcome = store.reap_expired(quarantine_after=5)
            assert outcome.requeued == [job.id]
            assert store.get(job.id).state == QUEUED

    def test_v3_database_reaches_v4_and_backfills_on_submit(self, tmp_path):
        path = tmp_path / "v3.db"
        _build_v3_database(path)
        with JobStore(path) as store:
            assert _user_version(store) == 4
            job = store.get(_request().content_hash)
            assert job.trace_id is None  # migrated rows keep NULL...
            # ...until a dedup attach backfills the hole.
            job, deduped = store.submit(_request())
            assert deduped is True
            assert job.trace_id is not None

    @pytest.mark.parametrize(
        "builder", [_build_v1_database, _build_v2_database, _build_v3_database]
    )
    def test_migration_is_idempotent_across_reopens(self, tmp_path, builder):
        path = tmp_path / "ladder.db"
        builder(path)
        for _ in range(3):
            with JobStore(path) as store:
                assert _user_version(store) == 4
                store.get(_request().content_hash)

    def test_v4_database_reopens_untouched(self, tmp_path):
        path = tmp_path / "v4.db"
        with JobStore(path) as store:
            job, _ = store.submit(_request(), deadline_s=4.5)
            trace_id = job.trace_id
        with JobStore(path) as store:
            assert _user_version(store) == 4
            reopened = store.get(_request().content_hash)
            assert reopened.deadline_s == 4.5
            assert reopened.trace_id == trace_id

    def test_dedup_attach_keeps_the_original_trace_id(self, tmp_path):
        with JobStore(tmp_path / "dedup.db") as store:
            first, _ = store.submit(_request(), trace_id="trace-original")
            attached, deduped = store.submit(_request(), trace_id="trace-late")
            assert deduped is True
            assert attached.trace_id == "trace-original"


class TestCorruptDatabase:
    def test_corrupt_file_is_moved_aside_and_recreated(self, tmp_path):
        path = tmp_path / "serve.db"
        path.write_bytes(b"this is not a sqlite database at all............")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            store = JobStore(path)
        try:
            job, _ = store.submit(_request())  # the fresh store works
            assert job.state == QUEUED
        finally:
            store.close()
        moved = list(tmp_path.glob("serve.db.corrupt-*"))
        assert len(moved) == 1
        assert moved[0].read_bytes().startswith(b"this is not")

    def test_corrupt_sidecar_files_do_not_survive(self, tmp_path):
        """No stale WAL/SHM may sit next to the fresh database (either
        sqlite discards them during the failed open, or the recovery moves
        them aside with the corrupt main file)."""
        path = tmp_path / "serve.db"
        path.write_bytes(b"garbage")
        (tmp_path / "serve.db-wal").write_bytes(b"wal garbage")
        (tmp_path / "serve.db-shm").write_bytes(b"shm garbage")
        with pytest.warns(RuntimeWarning):
            with JobStore(path) as store:
                store.submit(_request())  # fresh database actually writes
        wal = tmp_path / "serve.db-wal"
        assert not (
            wal.exists() and wal.read_bytes().startswith(b"wal garbage")
        )

    def test_future_schema_is_an_error_not_a_corruption(self, tmp_path):
        """A newer-versioned (valid) database must refuse, not be destroyed."""
        path = tmp_path / "future.db"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version=9")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 9"):
            JobStore(path)
        assert path.exists()  # still where it was
        assert list(tmp_path.glob("future.db.corrupt-*")) == []
