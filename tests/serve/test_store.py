"""JobStore: CRUD, dedup-by-content-hash, ordering, crash recovery."""

from __future__ import annotations

import pytest

from repro.api import ExperimentRequest, ExperimentResult
from repro.serve.store import (
    AmbiguousJobError,
    CANCELLED,
    DONE,
    FAILED,
    JobStore,
    QUARANTINED,
    QUEUED,
    RUNNING,
    UnknownJobError,
)


def _request(experiment: str = "fig8", rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment=experiment, pruning_rate=rate)


def _result(request: ExperimentRequest) -> ExperimentResult:
    return ExperimentResult(
        experiment=request.experiment,
        request=request,
        payload={"answer": 42},
        summary="the summary",
        timings=(("train", 1.5), ("report", 0.1)),
    )


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "serve.db") as job_store:
        yield job_store


class TestSubmitAndLookup:
    def test_submit_creates_queued_job_keyed_by_content_hash(self, store):
        request = _request()
        job, deduped = store.submit(request)
        assert not deduped
        assert job.id == request.content_hash
        assert job.state == QUEUED
        assert job.experiment == "fig8"
        assert job.submissions == 1
        assert job.executions == 0
        assert job.request() == request

    def test_identical_submission_attaches_instead_of_duplicating(self, store):
        first, _ = store.submit(_request())
        second, deduped = store.submit(_request())
        assert deduped
        assert second.id == first.id
        assert second.submissions == 2
        assert len(store.list_jobs()) == 1

    def test_different_requests_make_different_jobs(self, store):
        a, _ = store.submit(_request(rate=0.9))
        b, _ = store.submit(_request(rate=0.5))
        assert a.id != b.id
        assert len(store.list_jobs()) == 2

    def test_queued_job_absorbs_higher_priority(self, store):
        store.submit(_request(), priority=1)
        job, deduped = store.submit(_request(), priority=7)
        assert deduped
        assert job.priority == 7

    def test_find_by_unique_prefix(self, store):
        job, _ = store.submit(_request())
        assert store.find(job.id[:10]).id == job.id
        with pytest.raises(UnknownJobError):
            store.find("zzzz")

    def test_ambiguous_prefix_raises(self, store):
        a, _ = store.submit(_request(rate=0.9))
        b, _ = store.submit(_request(rate=0.5))
        common = ""  # empty prefix matches both
        with pytest.raises(AmbiguousJobError):
            store.find(common)

    def test_get_unknown_job_raises(self, store):
        with pytest.raises(UnknownJobError):
            store.get("missing")


class TestStateMachine:
    def test_claim_marks_running_and_counts_the_execution(self, store):
        store.submit(_request())
        job = store.claim_next()
        assert job is not None
        assert job.state == RUNNING
        assert job.executions == 1
        assert job.started_at is not None
        assert store.claim_next() is None  # nothing else queued

    def test_priority_then_fifo_ordering(self, store):
        low, _ = store.submit(_request(rate=0.5), priority=0, now=1.0)
        high, _ = store.submit(_request(rate=0.7), priority=5, now=2.0)
        older, _ = store.submit(_request(rate=0.9), priority=0, now=0.5)
        claimed = [store.claim_next().id for _ in range(3)]
        assert claimed == [high.id, older.id, low.id]

    def test_backoff_gate_blocks_until_due(self, store):
        store.submit(_request(), now=0.0)
        job = store.claim_next(now=1.0)
        store.mark_failed(job.id, "transient", retry_at=100.0)
        assert store.claim_next(now=50.0) is None
        retried = store.claim_next(now=100.0)
        assert retried is not None
        assert retried.executions == 2

    def test_done_round_trips_the_experiment_result(self, store):
        request = _request()
        store.submit(request)
        job = store.claim_next()
        done = store.mark_done(job.id, _result(request))
        assert done.state == DONE
        assert done.finished_at is not None
        restored = done.result()
        assert restored is not None
        assert restored.payload == {"answer": 42}
        assert restored.summary == "the summary"
        assert restored.request == request
        assert done.timings == {"train": 1.5, "report": 0.1}

    def test_terminal_failure_keeps_the_error(self, store):
        store.submit(_request())
        job = store.claim_next()
        failed = store.mark_failed(job.id, "ValueError: boom")
        assert failed.state == FAILED
        assert failed.error == "ValueError: boom"

    def test_resubmitting_failed_job_requeues_it(self, store):
        store.submit(_request())
        job = store.claim_next()
        store.mark_failed(job.id, "boom")
        requeued, deduped = store.submit(_request())
        assert not deduped  # it will execute again
        assert requeued.state == QUEUED
        assert requeued.error is None
        assert requeued.submissions == 2
        assert requeued.executions == 1  # history preserved...
        assert requeued.retry_base == 1  # ...but the retry budget is fresh
        assert requeued.executions_this_incarnation == 0

    def test_cancel_only_touches_queued_jobs(self, store):
        request = _request()
        store.submit(request)
        job, cancelled = store.cancel(request.content_hash)
        assert cancelled and job.state == CANCELLED

        other = _request(rate=0.5)
        store.submit(other)
        running = store.claim_next()
        job, cancelled = store.cancel(running.id)
        assert not cancelled
        assert job.state == RUNNING

    def test_record_stage_streams_live_timings(self, store):
        store.submit(_request())
        job = store.claim_next()
        store.record_stage(job.id, "train", 1.25)
        store.record_stage(job.id, "simulate", 0.5)
        assert store.get(job.id).timings == {"train": 1.25, "simulate": 0.5}

    def test_counts_cover_every_state(self, store):
        store.submit(_request())
        counts = store.counts()
        assert counts[QUEUED] == 1
        assert set(counts) == {
            QUEUED,
            RUNNING,
            DONE,
            FAILED,
            CANCELLED,
            QUARANTINED,
        }


class TestPersistenceAndRecovery:
    def test_jobs_survive_reopen(self, store, tmp_path):
        request = _request()
        store.submit(request)
        job = store.claim_next()
        store.mark_done(job.id, _result(request))
        store.close()

        with JobStore(tmp_path / "serve.db") as reopened:
            job = reopened.get(request.content_hash)
            assert job.state == DONE
            assert job.result().payload == {"answer": 42}

    def test_recover_requeues_expired_lease_jobs(self, tmp_path):
        path = tmp_path / "crash.db"
        with JobStore(path) as before:
            before.submit(_request())
            before.submit(_request(rate=0.5))
            # This one "crashes" mid-run: a lease that is already expired
            # stands in for a dead worker that stopped heartbeating.
            before.claim_next(worker_id="w-dead", lease_ttl=0.0)

        with JobStore(path) as after:
            assert after.recover() == 1
            states = {job.state for job in after.list_jobs()}
            assert states == {QUEUED}
            # The recovered job is claimable again and keeps its history.
            executions = sorted(j.executions for j in after.list_jobs())
            assert executions == [0, 1]

    def test_recover_leaves_live_leases_alone(self, tmp_path):
        """A restarting supervisor must not steal a live worker's job."""
        path = tmp_path / "fleet.db"
        with JobStore(path) as store:
            store.submit(_request())
            leased = store.claim_next(worker_id="w-alive", lease_ttl=60.0)
            assert leased is not None

        with JobStore(path) as reopened:
            assert reopened.recover() == 0
            job = reopened.get(leased.id)
            assert job.state == RUNNING
            assert job.worker_id == "w-alive"

    def test_list_jobs_filters_by_state_and_experiment(self, store):
        store.submit(_request(rate=0.5))
        store.submit(_request("table1", rate=0.9))
        job = store.claim_next()
        assert {j.state for j in store.list_jobs(state=QUEUED)} == {QUEUED}
        assert len(store.list_jobs(state=RUNNING)) == 1
        by_exp = store.list_jobs(experiment=job.experiment)
        assert all(j.experiment == job.experiment for j in by_exp)
        with pytest.raises(ValueError, match="unknown state"):
            store.list_jobs(state="nope")

    def test_submissions_records_every_attachment(self, store):
        request = _request()
        store.submit(request, source="cli", now=1.0)
        store.submit(request, source="http", now=2.0)
        rows = store.submissions(request.content_hash)
        assert [row["source"] for row in rows] == ["cli", "http"]
        with pytest.raises(UnknownJobError):
            store.submissions("missing")
