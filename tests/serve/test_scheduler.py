"""Scheduler: dedup (two identical submits -> one execution), retries, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ExperimentRequest, ExperimentResult, RunOptions
from repro.serve.scheduler import JobEvents, Scheduler
from repro.serve.store import CANCELLED, DONE, FAILED, JobStore, QUEUED


def _request(rate: float = 0.9, experiment: str = "fig8") -> ExperimentRequest:
    return ExperimentRequest(experiment=experiment, pruning_rate=rate)


class CountingExecutor:
    """Fake pipeline executor: thread-safe call counting, optional gating."""

    def __init__(
        self,
        fail_first: int = 0,
        gate: threading.Event | None = None,
        started: threading.Event | None = None,
    ) -> None:
        self.calls = 0
        self.fail_first = fail_first
        self.gate = gate
        self.started = started
        self._lock = threading.Lock()

    def __call__(self, request, options, on_stage):
        with self._lock:
            self.calls += 1
            call = self.calls
        if self.started is not None:
            self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10.0)
        if call <= self.fail_first:
            raise ValueError(f"synthetic failure #{call}")
        on_stage("report", 0.01)
        return ExperimentResult(
            experiment=request.experiment,
            request=request,
            payload={"call": call},
            summary=f"call {call}",
        )


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "serve.db") as job_store:
        yield job_store


def _scheduler(store, execute, **kwargs) -> Scheduler:
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("retry_base_delay", 0.01)
    return Scheduler(store, options=RunOptions(use_cache=False), execute=execute, **kwargs)


class TestDedup:
    def test_two_identical_submits_execute_once(self, store):
        """The acceptance property: 1 execution record, 2 submissions."""
        started, gate = threading.Event(), threading.Event()
        executor = CountingExecutor(gate=gate, started=started)
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            first, deduped_first = scheduler.submit(_request())
            assert not deduped_first
            assert started.wait(10.0)  # now running
            second, deduped_second = scheduler.submit(_request())
            assert deduped_second
            assert second.id == first.id
            gate.set()
            job = scheduler.wait(first.id, timeout=10.0)
            assert job.state == DONE
            assert job.executions == 1
            assert job.submissions == 2
            assert executor.calls == 1
        finally:
            gate.set()
            assert scheduler.stop(timeout=10.0)

    def test_submit_after_done_attaches_without_rerun(self, store):
        executor = CountingExecutor()
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            job, _ = scheduler.submit(_request())
            scheduler.wait(job.id, timeout=10.0)
            again, deduped = scheduler.submit(_request())
            assert deduped
            assert again.state == DONE
            time.sleep(0.1)  # a rerun would need the queue to move again
            assert executor.calls == 1
        finally:
            assert scheduler.stop(timeout=10.0)

    def test_different_requests_both_execute(self, store):
        executor = CountingExecutor()
        scheduler = _scheduler(store, executor, concurrency=2)
        scheduler.start()
        try:
            a, _ = scheduler.submit(_request(rate=0.9))
            b, _ = scheduler.submit(_request(rate=0.5))
            assert scheduler.wait(a.id, timeout=10.0).state == DONE
            assert scheduler.wait(b.id, timeout=10.0).state == DONE
            assert executor.calls == 2
        finally:
            assert scheduler.stop(timeout=10.0)


class TestRetries:
    def test_transient_failures_retry_with_backoff_then_succeed(self, store):
        executor = CountingExecutor(fail_first=2)
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            job, _ = scheduler.submit(_request(), max_retries=3)
            finished = scheduler.wait(job.id, timeout=10.0)
            assert finished.state == DONE
            assert finished.executions == 3
            assert executor.calls == 3
        finally:
            assert scheduler.stop(timeout=10.0)

    def test_exhausted_retry_budget_fails_terminally(self, store):
        executor = CountingExecutor(fail_first=100)
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            job, _ = scheduler.submit(_request(), max_retries=1)
            finished = scheduler.wait(job.id, timeout=10.0)
            assert finished.state == FAILED
            assert finished.executions == 2  # first run + one retry
            assert "synthetic failure" in finished.error
        finally:
            assert scheduler.stop(timeout=10.0)

    def test_resubmitted_job_gets_a_fresh_retry_budget(self, store):
        """Lifetime executions must not deplete a new submission's budget."""
        executor = CountingExecutor(fail_first=3)
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            job, _ = scheduler.submit(_request())  # fails terminally (call 1)
            assert scheduler.wait(job.id, timeout=10.0).state == FAILED
            job, deduped = scheduler.submit(_request(), max_retries=2)
            assert not deduped
            finished = scheduler.wait(job.id, timeout=10.0)
            # Incarnation 2 may execute up to 3 times (calls 2, 3, 4);
            # call 4 succeeds — the old execution did not eat the budget.
            assert finished.state == DONE
            assert finished.executions == 4
            assert finished.executions_this_incarnation == 3
        finally:
            assert scheduler.stop(timeout=10.0)

    def test_no_retries_by_default(self, store):
        executor = CountingExecutor(fail_first=100)
        scheduler = _scheduler(store, executor)
        scheduler.start()
        try:
            job, _ = scheduler.submit(_request())
            finished = scheduler.wait(job.id, timeout=10.0)
            assert finished.state == FAILED
            assert finished.executions == 1
        finally:
            assert scheduler.stop(timeout=10.0)


class TestLifecycle:
    def test_start_recovers_interrupted_jobs(self, tmp_path):
        path = tmp_path / "crash.db"
        with JobStore(path) as before:
            before.submit(_request())
            # Expired lease == a worker that died without heartbeating.
            assert before.claim_next(worker_id="w-dead", lease_ttl=0.0) is not None

        with JobStore(path) as after:
            executor = CountingExecutor()
            scheduler = _scheduler(after, executor)
            recovered = scheduler.start()
            try:
                assert recovered == 1
                job = scheduler.wait(_request().content_hash, timeout=10.0)
                assert job.state == DONE
                assert job.executions == 2  # the crashed claim + the rerun
            finally:
                assert scheduler.stop(timeout=10.0)

    def test_drain_finishes_running_and_keeps_queue(self, store):
        started, gate = threading.Event(), threading.Event()
        executor = CountingExecutor(gate=gate, started=started)
        scheduler = _scheduler(store, executor, concurrency=1)
        scheduler.start()
        running, _ = scheduler.submit(_request(rate=0.9))
        queued, _ = scheduler.submit(_request(rate=0.5))
        assert started.wait(10.0)

        # Ask for the drain from a helper thread, then release the gate: the
        # running job must complete, the queued one must stay queued.
        stopper = threading.Thread(target=scheduler.stop)
        stopper.start()
        time.sleep(0.05)
        gate.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert store.get(running.id).state == DONE
        assert store.get(queued.id).state == QUEUED
        assert executor.calls == 1

    def test_double_start_rejected(self, store):
        scheduler = _scheduler(store, CountingExecutor())
        scheduler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                scheduler.start()
        finally:
            assert scheduler.stop(timeout=10.0)

    def test_wait_times_out(self, store):
        scheduler = _scheduler(store, CountingExecutor())  # never started
        job, _ = scheduler.submit(_request())
        with pytest.raises(TimeoutError):
            scheduler.wait(job.id, timeout=0.05, poll=0.01)


class TestJobEventsEviction:
    """The events log must not grow without bound on a long-lived service."""

    def test_terminal_log_evicted_after_grace(self):
        events = JobEvents(terminal_grace=5.0)
        events.emit("a", "done")
        events.mark_terminal("a", now=time.time() - 10.0)  # grace already over
        events.emit("b", "started")  # purge runs on the next emit
        assert events.since("a") == []
        assert events.tracked_jobs == 1

    def test_terminal_log_readable_within_grace(self):
        """Late long-pollers get a window to read the final event."""
        events = JobEvents(terminal_grace=60.0)
        events.emit("a", "done")
        events.mark_terminal("a")
        events.emit("b", "started")
        assert [e["event"] for e in events.since("a")] == ["done"]

    def test_max_jobs_cap_evicts_oldest(self):
        events = JobEvents(max_jobs=3, terminal_grace=1000.0)
        for index in range(5):
            events.emit(f"job{index}", "started")
        assert events.since("job0") == []  # oldest evicted
        assert events.since("job4")  # newest kept
        assert events.tracked_jobs <= 4  # cap enforced at next emit

    def test_cap_prefers_evicting_terminal_logs(self):
        events = JobEvents(max_jobs=2, terminal_grace=1000.0)
        events.emit("live-old", "started")
        events.emit("finished", "done")
        events.mark_terminal("finished")
        events.emit("live-new", "started")
        events.emit("live-newer", "started")  # over cap: terminal goes first
        assert events.since("finished") == []
        assert events.since("live-old")  # older but live: survives

    def test_per_job_ring_limit(self):
        events = JobEvents(per_job_limit=3)
        for index in range(5):
            events.emit("a", f"stage{index}")
        log = events.since("a")
        assert [e["event"] for e in log] == ["stage2", "stage3", "stage4"]
        assert log[-1]["seq"] == 5  # sequence numbers keep counting


class TestCancelEvents:
    def test_cancel_emits_cancelled_event(self, store):
        scheduler = _scheduler(store, CountingExecutor())  # never started
        job, _ = scheduler.submit(_request())
        cancelled_job, cancelled = scheduler.cancel(job.id)
        assert cancelled
        assert cancelled_job.state == CANCELLED
        assert [e["event"] for e in scheduler.events.since(job.id)] == [
            "cancelled"
        ]

    def test_cancel_noop_emits_nothing(self, store):
        scheduler = _scheduler(store, CountingExecutor())
        job, _ = scheduler.submit(_request())
        scheduler.cancel(job.id)
        scheduler.cancel(job.id)  # second cancel is a no-op
        assert len(scheduler.events.since(job.id)) == 1

    def test_long_poller_woken_by_cancel(self, store):
        """The satellite fix: DELETE must not leave event streams hanging."""
        scheduler = _scheduler(store, CountingExecutor())
        job, _ = scheduler.submit(_request())
        seen: list[dict] = []
        poller = threading.Thread(
            target=lambda: seen.extend(scheduler.events.wait(job.id, 0, 10.0))
        )
        poller.start()
        time.sleep(0.1)
        scheduler.cancel(job.id)
        poller.join(timeout=10.0)
        assert not poller.is_alive()
        assert [e["event"] for e in seen] == ["cancelled"]


class TestRealPipeline:
    def test_smoke_experiment_end_to_end(self, store):
        """One real registered pipeline through the default executor."""
        from repro.eval.common import ExperimentScale

        scheduler = Scheduler(
            store, options=RunOptions(use_cache=False), poll_interval=0.02
        )
        scheduler.start()
        try:
            request = ExperimentRequest(
                experiment="ablate-fifo", scale=ExperimentScale.preset("smoke")
            )
            job, _ = scheduler.submit(request)
            finished = scheduler.wait(job.id, timeout=120.0)
            assert finished.state == DONE
            result = finished.result()
            assert result is not None
            assert result.summary  # the harness-rendered table
            # Live per-stage timings arrived via the on_stage hook.
            assert set(finished.timings) == {"prune", "report"}
        finally:
            assert scheduler.stop(timeout=10.0)
