"""The observability endpoints: /stats, /metrics, /jobs/<id>/events.

Counters live in the process-global registry and accumulate across the test
run, so every numeric assertion is a delta between two snapshots taken
inside one test.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ExperimentRequest, ExperimentResult, RunOptions
from repro.serve.client import ServeClient, ServeError
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import JobStore


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


class StageExecutor:
    """Fake executor that reports two stages, optionally gated."""

    def __init__(self, gate: threading.Event | None = None,
                 started: threading.Event | None = None) -> None:
        self.gate = gate
        self.started = started

    def __call__(self, request, options, on_stage):
        if self.started is not None:
            self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10.0)
        on_stage("simulate", 0.02)
        on_stage("report", 0.01)
        return ExperimentResult(
            experiment=request.experiment,
            request=request,
            payload={},
            summary="ok",
        )


class _Service:
    def __init__(self, tmp_path, execute=None, start=True):
        self.store = JobStore(tmp_path / "serve.db")
        self.scheduler = Scheduler(
            self.store,
            options=RunOptions(use_cache=False),
            poll_interval=0.02,
            execute=execute,
        )
        if start:
            self.scheduler.start()
        self.server = ExperimentServer(self.scheduler, port=0)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.client = ServeClient(self.server.url)

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        if self.scheduler.running:
            assert self.scheduler.stop(timeout=10.0)
        self.store.close()


@pytest.fixture
def idle(tmp_path):
    service = _Service(tmp_path, execute=StageExecutor(), start=False)
    yield service
    service.close()


@pytest.fixture
def running(tmp_path):
    service = _Service(tmp_path, execute=StageExecutor(), start=True)
    yield service
    service.close()


class TestHealthz:
    def test_reports_version_and_scheduler_liveness(self, running):
        health = running.client.health()
        assert health["ok"] is True
        import repro

        assert health["version"] == repro.__version__
        assert health["uptime_s"] >= 0
        sched = health["scheduler"]
        assert sched["running"] is True
        assert sched["workers_alive"] == 1
        assert sched["last_dequeue_at"] is None  # nothing claimed yet

    def test_last_dequeue_timestamp_set_after_a_claim(self, running):
        before = time.time()
        job = running.client.submit(_request())["job"]
        running.client.wait(job["id"], timeout=30.0, poll=0.02)
        sched = running.client.health()["scheduler"]
        assert sched["last_dequeue_at"] is not None
        assert sched["last_dequeue_at"] >= before


class TestStats:
    def test_dedup_and_done_counters(self, running):
        before = running.client.stats()
        first = running.client.submit(_request(rate=0.7))
        second = running.client.submit(_request(rate=0.7))
        assert first["deduped"] is False and second["deduped"] is True
        running.client.wait(first["job"]["id"], timeout=30.0, poll=0.02)
        after = running.client.stats()

        delta = {
            key: after["jobs"][key] - before["jobs"][key]
            for key in after["jobs"]
        }
        assert delta["submitted"] == 2
        assert delta["dedup_attached"] == 1
        assert delta["claimed"] == 1  # deduped submission never executed
        assert delta["done"] == 1
        assert after["queue"]["done"] == 1
        assert after["scheduler"]["queue_wait"] is not None
        assert after["scheduler"]["queue_wait"]["count"] >= 1

    def test_snapshot_shape(self, idle):
        stats = idle.client.stats()
        import repro

        assert stats["version"] == repro.__version__
        assert stats["uptime_s"] >= 0
        assert set(stats["queue"]) >= {"queued", "running", "done", "failed"}
        assert isinstance(stats["stages"], dict)
        for info in stats["stages"].values():
            assert set(info) == {"count", "p50", "p95", "p99"}
        for info in stats["caches"].values():
            assert set(info) == {"hits", "misses", "hit_rate"}
        assert isinstance(stats["metrics"], dict)

    def test_cache_hit_rates_derived_from_counters(self, idle, tmp_path):
        from repro.explore.cache import ResultCache

        cache = ResultCache(tmp_path / "statscache.jsonl")
        cache.get("missing")
        cache.put("k", {"v": 1})
        cache.get("k")
        info = idle.client.stats()["caches"]["statscache"]
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == pytest.approx(0.5)


class TestMetricsEndpoint:
    def test_prometheus_text_and_scrape_time_gauges(self, running):
        job = running.client.submit(_request(rate=0.3))["job"]
        running.client.wait(job["id"], timeout=30.0, poll=0.02)
        text = running.client.metrics_text()
        assert "# TYPE repro_serve_jobs gauge" in text
        assert 'repro_serve_jobs{state="done"} 1' in text
        assert "repro_serve_uptime_seconds" in text
        assert "repro_serve_workers_alive 1" in text
        assert "repro_jobs_submitted_total" in text
        assert "repro_serve_queue_wait_seconds_count" in text

    def test_content_type_is_prometheus_text(self, idle):
        import urllib.request

        with urllib.request.urlopen(idle.server.url + "/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")


class TestJobEvents:
    def test_streamed_events_cover_the_lifecycle(self, tmp_path):
        started, gate = threading.Event(), threading.Event()
        service = _Service(
            tmp_path, execute=StageExecutor(gate=gate, started=started)
        )
        try:
            job = service.client.submit(_request())["job"]
            assert started.wait(10.0)
            first = service.client.events(job["id"], since=0, timeout=5.0)
            assert first["events"][0]["event"] == "started"
            assert first["events"][0]["experiment"] == "fig8"
            assert first["next"] == first["events"][-1]["seq"]

            gate.set()
            service.client.wait(job["id"], timeout=30.0, poll=0.02)
            rest = service.client.events(
                job["id"], since=first["next"], timeout=5.0
            )
            kinds = [event["event"] for event in rest["events"]]
            assert kinds == ["stage", "stage", "done"]
            stages = [e["stage"] for e in rest["events"] if e["event"] == "stage"]
            assert stages == ["simulate", "report"]
            seqs = [event["seq"] for event in rest["events"]]
            assert seqs == sorted(seqs)
            assert all(seq > first["next"] for seq in seqs)
            assert rest["state"] == "done"

            # Terminal job + no fresh events: returns immediately, empty.
            drained = service.client.events(
                job["id"], since=rest["next"], timeout=5.0
            )
            assert drained["events"] == []
            assert drained["next"] == rest["next"]
        finally:
            service.close()

    def test_long_poll_times_out_empty_on_idle_job(self, idle):
        job = idle.client.submit(_request())["job"]  # scheduler not running
        start = time.monotonic()
        response = idle.client.events(job["id"], since=0, timeout=0.3)
        elapsed = time.monotonic() - start
        assert response["events"] == []
        assert response["next"] == 0
        assert 0.2 <= elapsed < 5.0

    def test_long_poll_wakes_on_emit(self, idle):
        job = idle.client.submit(_request())["job"]
        events = idle.scheduler.events

        def emit_soon():
            time.sleep(0.1)
            events.emit(job["id"], "stage", stage="train", seconds=1.0)

        threading.Thread(target=emit_soon, daemon=True).start()
        start = time.monotonic()
        response = idle.client.events(job["id"], since=0, timeout=10.0)
        elapsed = time.monotonic() - start
        assert [e["event"] for e in response["events"]] == ["stage"]
        assert elapsed < 5.0  # woke on notify, not the timeout

    def test_unknown_job_is_404(self, idle):
        with pytest.raises(ServeError) as excinfo:
            idle.client.events("ffff00001111", timeout=0.1)
        assert excinfo.value.status == 404

    def test_bad_since_is_400(self, idle):
        job = idle.client.submit(_request())["job"]
        with pytest.raises(ServeError) as excinfo:
            idle.client._call("GET", f"/jobs/{job['id']}/events?since=nope")
        assert excinfo.value.status == 400


class TestJobEventsUnit:
    def test_per_job_ring_is_bounded(self):
        from repro.serve.scheduler import JobEvents

        log = JobEvents(per_job_limit=3)
        for i in range(6):
            log.emit("job", "stage", index=i)
        events = log.since("job")
        assert len(events) == 3
        assert [event["index"] for event in events] == [3, 4, 5]
        # Sequence numbers keep climbing across evictions.
        assert [event["seq"] for event in events] == [4, 5, 6]

    def test_forget_drops_the_log(self):
        from repro.serve.scheduler import JobEvents

        log = JobEvents()
        log.emit("job", "started")
        log.forget("job")
        assert log.since("job") == []
