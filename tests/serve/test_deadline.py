"""Per-job deadlines: pipeline enforcement, terminal failure, compat."""

from __future__ import annotations

import time

import pytest

from repro.api import DeadlineExceeded, ExperimentRequest, run_experiment
from repro.api.request import RunOptions
from repro.api.stages import Pipeline, PipelineContext, Stage
from repro.serve.scheduler import Scheduler, _accepts_deadline, call_execute
from repro.serve.store import FAILED, JobStore
from repro.serve.worker import Worker


def _request(rate: float = 0.9) -> ExperimentRequest:
    from repro.eval.common import ExperimentScale

    return ExperimentRequest(
        experiment="ablate-rate", pruning_rate=rate, scale=ExperimentScale.smoke()
    )


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "serve.db") as job_store:
        yield job_store


class TestPipelineDeadline:
    def test_no_deadline_is_the_default_noop(self):
        ctx = PipelineContext(request=_request(), options=RunOptions())
        ctx.check_deadline()  # must not raise

    def test_expired_deadline_raises_with_overshoot(self):
        now = time.time()
        ctx = PipelineContext(
            request=_request(), options=RunOptions(), deadline=now - 2.0
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            ctx.check_deadline(now=now)
        assert excinfo.value.deadline == pytest.approx(now - 2.0)
        assert excinfo.value.overshoot == pytest.approx(2.0)

    def test_deadline_checked_before_each_stage(self):
        """A pipeline with a blown deadline never enters its first stage."""
        ran = []
        pipeline = Pipeline(
            "ablate-rate",
            [Stage(name="report", run=lambda ctx: ran.append("report"))],
        )
        ctx = PipelineContext(
            request=_request(),
            options=RunOptions(),
            deadline=time.time() - 1.0,
        )
        with pytest.raises(DeadlineExceeded):
            pipeline.run(ctx)
        assert ran == []

    def test_run_experiment_threads_the_deadline(self):
        with pytest.raises(DeadlineExceeded):
            run_experiment(
                _request(),
                options=RunOptions(use_cache=False),
                deadline=time.time() - 1.0,
            )
        # A generous deadline lets the smoke run finish normally.
        result = run_experiment(
            _request(),
            options=RunOptions(use_cache=False),
            deadline=time.time() + 300.0,
        )
        assert result.payload


class TestExecuteCompat:
    """Old 3-arg execute callables must keep working unchanged."""

    def test_legacy_three_arg_lambda_is_not_passed_a_deadline(self):
        execute = lambda request, options, on_stage: "legacy"  # noqa: E731
        assert not _accepts_deadline(execute)
        assert (
            call_execute(execute, _request(), RunOptions(), None, deadline=5.0)
            == "legacy"
        )

    def test_four_positional_args_receive_the_deadline(self):
        seen = {}

        def execute(request, options, on_stage, deadline):
            seen["deadline"] = deadline
            return "new"

        assert _accepts_deadline(execute)
        call_execute(execute, _request(), RunOptions(), None, deadline=7.5)
        assert seen["deadline"] == 7.5

    def test_keyword_only_deadline_is_accepted(self):
        seen = {}

        def execute(request, options, on_stage, *, deadline=None):
            seen["deadline"] = deadline

        assert _accepts_deadline(execute)
        call_execute(execute, _request(), RunOptions(), None, deadline=1.0)
        assert seen["deadline"] == 1.0

    def test_none_deadline_is_never_forwarded(self):
        """No-deadline jobs call even deadline-aware callables legacy-style,
        so their own defaults apply."""

        def execute(request, options, on_stage, deadline="untouched"):
            return deadline

        assert (
            call_execute(execute, _request(), RunOptions(), None, deadline=None)
            == "untouched"
        )


class TestWorkerDeadline:
    def test_deadline_is_started_at_plus_budget(self, store):
        store.submit(_request(), deadline_s=30.0)
        seen = {}

        def execute(request, options, on_stage, deadline):
            seen["deadline"] = deadline
            from repro.api import ExperimentResult

            return ExperimentResult(
                experiment=request.experiment, request=request, payload={}
            )

        worker = Worker(
            store, worker_id="w1", poll_interval=0.05, execute=execute
        )
        assert worker.run(max_jobs=1, idle_exit=10.0) == 1
        job = store.get(_request().content_hash)
        assert seen["deadline"] == pytest.approx(job.started_at + 30.0)

    def test_deadline_exceeded_is_terminal_despite_retries(self, store):
        """A job that blew its budget must not burn its retry budget too."""
        store.submit(_request(), max_retries=5, deadline_s=0.001)

        def execute(request, options, on_stage, deadline):
            raise DeadlineExceeded(deadline, 1.0)

        worker = Worker(
            store, worker_id="w1", poll_interval=0.05, execute=execute
        )
        assert worker.run(max_jobs=1, idle_exit=10.0) == 1
        job = store.get(_request().content_hash)
        assert job.state == FAILED  # terminal, not re-queued for retry
        assert job.executions == 1
        assert "DeadlineExceeded" in job.error

    def test_scheduler_marks_deadline_exceeded_terminal(self, store):
        def execute(request, options, on_stage, deadline):
            raise DeadlineExceeded(deadline or 0.0, 2.0)

        scheduler = Scheduler(
            store,
            options=RunOptions(use_cache=False),
            concurrency=1,
            execute=execute,
        )
        scheduler.start()
        try:
            job, _ = scheduler.submit(
                _request(), max_retries=5, deadline_s=0.001
            )
            finished = scheduler.wait(job.id, timeout=30.0)
        finally:
            scheduler.stop(timeout=10.0)
        assert finished.state == FAILED
        assert finished.executions == 1
        events = [e["event"] for e in scheduler.events.since(job.id)]
        assert "failed" in events

    def test_deadline_survives_the_http_submit_path(self, store):
        """deadline_s rides the store row, not the request hash."""
        a, _ = store.submit(_request(), deadline_s=12.0)
        assert a.deadline_s == 12.0
        assert a.to_dict()["deadline_s"] == 12.0
        # Same request, no deadline: the attach keeps the original budget.
        b, deduped = store.submit(_request())
        assert deduped and b.deadline_s == 12.0
