"""HTTP API round-trip on an ephemeral port."""

from __future__ import annotations

import threading

import pytest

from repro.api import ExperimentRequest, RunOptions
from repro.serve.client import ServeClient, ServeError, ServeUnavailableError
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import JobStore


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


@pytest.fixture
def idle_service(tmp_path):
    """Server whose scheduler is *not* draining — jobs stay queued."""
    store = JobStore(tmp_path / "serve.db")
    scheduler = Scheduler(store, options=RunOptions(use_cache=False))
    server = ExperimentServer(scheduler, port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServeClient(server.url)
    server.shutdown()
    server.server_close()
    store.close()


class TestHealth:
    def test_healthz(self, idle_service):
        import repro

        health = idle_service.health()
        assert health["ok"] is True
        assert health["version"] == repro.__version__
        assert health["uptime_s"] >= 0
        assert health["jobs"]["queued"] == 0
        scheduler = health["scheduler"]
        assert scheduler["concurrency"] == 1
        assert scheduler["running"] is False
        assert scheduler["workers_alive"] == 0
        assert scheduler["last_dequeue_at"] is None
        assert scheduler["lease_ttl"] > 0
        assert health["workers"] == []  # none registered while idle
        assert health["fleet"] is None  # not running in --fleet mode


class TestSubmit:
    def test_post_get_round_trip(self, idle_service):
        response = idle_service.submit(_request())
        assert response["deduped"] is False
        job = response["job"]
        assert job["state"] == "queued"
        assert job["id"] == _request().content_hash

        fetched = idle_service.job(job["id"])
        assert fetched["state"] == "queued"
        assert fetched["request"] == _request().to_dict()
        assert fetched["result"] is None

    def test_second_identical_submit_is_deduped(self, idle_service):
        first = idle_service.submit(_request())
        second = idle_service.submit(_request())
        assert first["deduped"] is False
        assert second["deduped"] is True
        assert second["job"]["submissions"] == 2
        assert len(idle_service.jobs()) == 1

    def test_bare_request_dict_accepted(self, idle_service):
        response = idle_service.submit(_request(rate=0.5).to_dict())
        assert response["job"]["experiment"] == "fig8"

    def test_unknown_experiment_rejected(self, idle_service):
        with pytest.raises(ServeError) as excinfo:
            idle_service.submit({"experiment": "nope", "scale": None})
        assert excinfo.value.status == 400
        assert "unknown experiment" in excinfo.value.message

    def test_malformed_body_rejected(self, idle_service):
        with pytest.raises(ServeError) as excinfo:
            idle_service._call("POST", "/jobs", {"request": {"bogus": 1}})
        assert excinfo.value.status == 400

    def test_non_object_body_rejected_with_400(self, idle_service):
        """A JSON list/string body must 400, not crash the handler."""
        for body in ([1, 2, 3], {"request": "fig8"}):
            with pytest.raises(ServeError) as excinfo:
                idle_service._call("POST", "/jobs", body)
            assert excinfo.value.status == 400
            assert "JSON object" in excinfo.value.message


class TestListingAndCancel:
    def test_list_filters_by_state(self, idle_service):
        idle_service.submit(_request(rate=0.9))
        idle_service.submit(_request(rate=0.5))
        assert len(idle_service.jobs(state="queued")) == 2
        assert idle_service.jobs(state="done") == []
        with pytest.raises(ServeError) as excinfo:
            idle_service.jobs(state="bogus")
        assert excinfo.value.status == 400

    def test_prefix_lookup_and_404(self, idle_service):
        job = idle_service.submit(_request())["job"]
        assert idle_service.job(job["id"][:10])["id"] == job["id"]
        with pytest.raises(ServeError) as excinfo:
            idle_service.job("ffff00001111")
        assert excinfo.value.status == 404

    def test_delete_cancels_queued_job(self, idle_service):
        job = idle_service.submit(_request())["job"]
        response = idle_service.cancel(job["id"])
        assert response["cancelled"] is True
        assert response["job"]["state"] == "cancelled"
        # Cancelling again is a no-op with cancelled=False.
        again = idle_service.cancel(job["id"])
        assert again["cancelled"] is False

    def test_unknown_routes_are_404(self, idle_service):
        with pytest.raises(ServeError) as excinfo:
            idle_service._call("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            idle_service._call("DELETE", "/jobs")
        assert excinfo.value.status == 404


class TestExecutionThroughHTTP:
    def test_submit_executes_and_result_round_trips(self, tmp_path):
        """Full loop: HTTP submit -> scheduler executes -> HTTP result."""
        from repro.eval.common import ExperimentScale

        store = JobStore(tmp_path / "serve.db")
        scheduler = Scheduler(
            store, options=RunOptions(use_cache=False), poll_interval=0.02
        )
        scheduler.start()
        server = ExperimentServer(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(server.url)
        try:
            request = ExperimentRequest(
                experiment="ablate-fifo", scale=ExperimentScale.preset("smoke")
            )
            job = client.submit(request)["job"]
            finished = client.wait(job["id"], timeout=120.0, poll=0.05)
            assert finished["state"] == "done"
            assert finished["result"]["summary"]
            assert finished["result"]["request"] == request.to_dict()
            assert finished["timings"]  # streamed live while running
            health = client.health()
            assert health["jobs"]["done"] == 1
        finally:
            server.shutdown()
            server.server_close()
            assert scheduler.stop(timeout=10.0)
            store.close()


class TestClientErrors:
    def test_unreachable_service(self):
        client = ServeClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServeUnavailableError, match="cannot reach"):
            client.health()
