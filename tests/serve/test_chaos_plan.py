"""The chaos drill's plan and batch (the full drill runs in CI, not here)."""

from __future__ import annotations

from repro.faults import FaultPlan
from repro.serve.chaos import HANG_EXPERIMENT, _drill_requests, default_chaos_plan


class TestDefaultPlan:
    def test_covers_the_three_required_sites(self):
        plan = default_chaos_plan(0, crash_job="c" * 64, commit_job="d" * 64)
        assert plan.sites == ("stage.boundary", "store.commit", "worker.claim")
        actions = {rule.site: rule.action for rule in plan.rules}
        assert actions == {
            "worker.claim": "crash",
            "stage.boundary": "hang",
            "store.commit": "error",
        }

    def test_crash_rule_never_exhausts(self):
        """Respawned workers must keep dying on the crash victim, or the
        job completes instead of quarantining."""
        plan = default_chaos_plan(0, crash_job="c" * 64, commit_job="d" * 64)
        (crash_rule,) = [r for r in plan.rules if r.action == "crash"]
        assert crash_rule.times is None
        assert dict(crash_rule.match) == {"job": "c" * 64}

    def test_plan_ships_through_json(self):
        plan = default_chaos_plan(7, crash_job="c" * 64, commit_job="d" * 64)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.seed == 7


class TestDrillBatch:
    def test_batch_jobs_are_distinct(self):
        for smoke in (True, False):
            requests = _drill_requests(smoke)
            hashes = [r.content_hash for r in requests.values()]
            assert len(set(hashes)) == len(hashes)

    def test_hang_experiment_is_exclusive_to_the_hang_victim(self):
        """The hang rule matches by experiment name, so any other job of
        that experiment would be wedged too — the batch must reserve it."""
        for smoke in (True, False):
            requests = _drill_requests(smoke)
            owners = [
                role
                for role, request in requests.items()
                if request.experiment == HANG_EXPERIMENT
            ]
            assert owners == ["hang"]

    def test_batch_is_smoke_scale(self):
        for request in _drill_requests(True).values():
            assert request.scale is not None
            assert request.scale.epochs <= 1
