"""Crash-loop quarantine: the requeue cap, stickiness, the manual escape."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ExperimentRequest, RunOptions
from repro.serve.scheduler import Scheduler
from repro.serve.store import (
    DEFAULT_REQUEUE_CAP,
    INACTIVE_STATES,
    JobStore,
    QUARANTINED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "serve.db") as job_store:
        yield job_store


def _expire_once(store, job_id, cap, *, at):
    """Claim the job and let its lease expire: one crash-loop iteration."""
    claimed = store.claim_next(worker_id="w-crashy", lease_ttl=1.0, now=at)
    assert claimed is not None and claimed.id == job_id
    return store.reap_expired(now=at + 2.0, quarantine_after=cap)


class TestQuarantineCap:
    def test_job_quarantines_after_exactly_cap_requeues(self, store):
        """cap expiries requeue; expiry cap+1 quarantines with count == cap."""
        cap = 2
        job, _ = store.submit(_request())
        for iteration in range(cap):
            outcome = _expire_once(
                store, job.id, cap, at=time.time() + iteration * 10
            )
            assert outcome.requeued == [job.id]
            assert outcome.quarantined == []
            assert store.get(job.id).requeue_count == iteration + 1
        outcome = _expire_once(store, job.id, cap, at=time.time() + cap * 10)
        assert outcome.requeued == []
        assert outcome.quarantined == [job.id]
        quarantined = store.get(job.id)
        assert quarantined.state == QUARANTINED
        assert quarantined.requeue_count == cap  # not incremented past the cap
        assert quarantined.finished_at is not None
        assert "crash loop" in quarantined.error
        assert quarantined.executions == cap + 1  # every claim counted

    def test_quarantined_is_inactive_but_not_terminal(self, store):
        assert QUARANTINED in INACTIVE_STATES
        assert QUARANTINED not in TERMINAL_STATES

    def test_quarantined_job_is_not_claimable(self, store):
        job, _ = store.submit(_request())
        _expire_once(store, job.id, 0, at=time.time())
        assert store.get(job.id).state == QUARANTINED
        assert store.claim_next() is None

    def test_cap_zero_quarantines_on_first_expiry(self, store):
        job, _ = store.submit(_request())
        outcome = _expire_once(store, job.id, 0, at=time.time())
        assert outcome.quarantined == [job.id]
        assert store.get(job.id).requeue_count == 0

    def test_successful_rerun_keeps_earlier_requeues(self, store):
        """The count tracks lease expiries since the last (re)submission."""
        job, _ = store.submit(_request())
        _expire_once(store, job.id, DEFAULT_REQUEUE_CAP, at=time.time())
        assert store.get(job.id).requeue_count == 1


class TestQuarantineStickiness:
    def test_resubmit_attaches_without_releasing(self, store):
        """Unlike failed jobs, a quarantined job ignores resubmission — the
        crash loop must not restart just because a client retried."""
        job, _ = store.submit(_request())
        _expire_once(store, job.id, 0, at=time.time())
        again, deduped = store.submit(_request())
        assert deduped
        assert again.state == QUARANTINED
        assert store.claim_next() is None

    def test_recover_quarantines_crash_looped_jobs(self, tmp_path):
        """Boot-time recovery applies the same cap as the live reaper."""
        path = tmp_path / "boot.db"
        with JobStore(path) as before:
            job, _ = before.submit(_request())
            now = time.time()
            before.claim_next(worker_id="w-dead", lease_ttl=0.0, now=now)
        with JobStore(path) as after:
            # requeue_count 0 < cap 0 is false: straight to quarantine.
            assert after.recover(quarantine_after=0) == 0
            assert after.get(job.id).state == QUARANTINED


class TestManualRequeue:
    def test_requeue_releases_quarantine_with_fresh_budget(self, store):
        job, _ = store.submit(_request(), max_retries=3)
        _expire_once(store, job.id, 0, at=time.time())
        released, requeued = store.requeue(job.id)
        assert requeued
        assert released.state == QUEUED
        assert released.requeue_count == 0  # the cap counter restarts
        assert released.error is None
        assert released.retry_base == released.executions  # fresh retries
        claimed = store.claim_next()
        assert claimed is not None and claimed.id == job.id

    def test_requeue_accepts_failed_jobs_too(self, store):
        job, _ = store.submit(_request())
        store.claim_next()
        store.mark_failed(job.id, "boom")
        _, requeued = store.requeue(job.id)
        assert requeued
        assert store.get(job.id).state == QUEUED

    def test_requeue_refuses_running_and_done(self, store):
        job, _ = store.submit(_request())
        store.claim_next()
        same, requeued = store.requeue(job.id)
        assert not requeued
        assert same.state == RUNNING

    def test_scheduler_requeue_emits_event(self, store):
        scheduler = Scheduler(
            store, options=RunOptions(use_cache=False), concurrency=0
        )
        job, _ = store.submit(_request())
        _expire_once(store, job.id, 0, at=time.time())
        released, requeued = scheduler.requeue(job.id)
        assert requeued and released.state == QUEUED
        events = scheduler.events.since(job.id)
        assert any(
            e["event"] == "requeued" and e.get("reason") == "manual"
            for e in events
        )


class TestConcurrentReapers:
    """Many reapers, one store file: every transition applies exactly once."""

    N_REAPERS = 6

    def _race(self, path, job_id, cap, now):
        outcomes = []
        barrier = threading.Barrier(self.N_REAPERS)

        def reap():
            with JobStore(path) as own_store:  # own connection, like a worker
                barrier.wait()
                outcomes.append(
                    own_store.reap_expired(now=now, quarantine_after=cap)
                )

        threads = [
            threading.Thread(target=reap) for _ in range(self.N_REAPERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        return outcomes

    def test_only_one_reaper_requeues(self, tmp_path):
        path = tmp_path / "race.db"
        with JobStore(path) as store:
            job, _ = store.submit(_request())
            now = time.time()
            store.claim_next(worker_id="w1", lease_ttl=1.0, now=now)
        outcomes = self._race(path, job.id, cap=5, now=now + 2.0)
        requeues = [o for o in outcomes if job.id in o.requeued]
        assert len(requeues) == 1
        with JobStore(path) as store:
            assert store.get(job.id).requeue_count == 1  # not N_REAPERS

    def test_only_one_reaper_quarantines(self, tmp_path):
        path = tmp_path / "race-q.db"
        with JobStore(path) as store:
            job, _ = store.submit(_request())
            now = time.time()
            store.claim_next(worker_id="w1", lease_ttl=1.0, now=now)
        outcomes = self._race(path, job.id, cap=0, now=now + 2.0)
        quarantines = [o for o in outcomes if job.id in o.quarantined]
        assert len(quarantines) == 1
        with JobStore(path) as store:
            final = store.get(job.id)
            assert final.state == QUARANTINED
            # The quarantine error was written once, not stacked.
            assert final.error.count("crash loop") == 1
