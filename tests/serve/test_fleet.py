"""Multi-process fleet: claim races, SIGKILL recovery, supervised respawn.

These tests spawn *real* worker processes against one shared SQLite store —
the cross-process claim race cannot be reproduced with threads because
threads share the store's in-process lock; only separate processes exercise
the ``BEGIN IMMEDIATE`` lease transactions.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import ExperimentRequest, ExperimentResult
from repro.serve.store import DONE, JobStore, QUEUED, RUNNING
from repro.serve.supervisor import WorkerSupervisor
from repro.serve.worker import Worker

SRC = Path(__file__).resolve().parents[2] / "src"

# A claim/execute/complete loop that exits once the queue stays empty.
_HAMMER_SCRIPT = """
import sys, time
from repro.api.request import ExperimentResult
from repro.serve.store import JobStore

db, worker_id = sys.argv[1], sys.argv[2]
with JobStore(db) as store:
    idle = 0
    while idle < 10:
        job = store.claim_next(worker_id=worker_id, lease_ttl=30.0)
        if job is None:
            idle += 1
            time.sleep(0.02)
            continue
        idle = 0
        result = ExperimentResult(
            experiment=job.experiment,
            request=job.request(),
            payload={"worker": worker_id},
            summary="ok",
        )
        store.mark_done(job.id, result, worker_id=worker_id)
"""

# Claim one job with a short lease, announce it, then hang without ever
# heartbeating — the stand-in for a worker about to be SIGKILL'd mid-job.
_VICTIM_SCRIPT = """
import sys, time
from repro.serve.store import JobStore

with JobStore(sys.argv[1]) as store:
    job = store.claim_next(worker_id="w-victim", lease_ttl=float(sys.argv[2]))
    assert job is not None, "victim found an empty queue"
    print("claimed " + job.id, flush=True)
    time.sleep(600)
"""


def _request(rate: float) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


def _result(request: ExperimentRequest) -> ExperimentResult:
    return ExperimentResult(
        experiment=request.experiment,
        request=request,
        payload={"ok": True},
        summary="done",
    )


def _python_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCrossProcessClaims:
    def test_every_job_executes_exactly_once_under_contention(self, tmp_path):
        """The acceptance property: N processes, zero double-claims."""
        db = tmp_path / "fleet.db"
        jobs = 40
        with JobStore(db) as store:
            for index in range(jobs):
                store.submit(_request(rate=0.01 + index * 0.02))

        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER_SCRIPT, str(db), f"hammer:{n}"],
                env=_python_env(),
            )
            for n in range(3)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0

        with JobStore(db) as store:
            finished = store.list_jobs(limit=jobs * 2)
            assert len(finished) == jobs
            assert all(job.state == DONE for job in finished)
            # Exactly one claim each: claim_next increments ``executions``
            # atomically, so a double-claim would show up as executions > 1.
            assert [job.executions for job in finished] == [1] * jobs
            workers = {job.result().payload["worker"] for job in finished}
            assert len(workers) >= 2  # the load actually spread


class TestSigkillRecovery:
    def test_killed_workers_job_requeues_and_survivor_finishes(self, tmp_path):
        """SIGKILL mid-job: lease expiry requeues, another worker completes."""
        db = tmp_path / "crash.db"
        lease_ttl = 1.0
        request = _request(rate=0.9)
        with JobStore(db) as store:
            store.submit(request)

        victim = subprocess.Popen(
            [sys.executable, "-c", _VICTIM_SCRIPT, str(db), str(lease_ttl)],
            env=_python_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = victim.stdout.readline()  # blocks until the claim landed
            assert line.startswith("claimed ")
            victim.kill()  # SIGKILL: no drain, no heartbeat, lease orphaned
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        with JobStore(db) as store:
            assert store.get(request.content_hash).state == RUNNING

            survivor = Worker(
                store,
                worker_id="w-survivor",
                lease_ttl=lease_ttl,
                poll_interval=0.05,
                execute=lambda req, options, on_stage: _result(req),
            )
            executed = survivor.run(max_jobs=1, idle_exit=30.0)
            assert executed == 1

            job = store.get(request.content_hash)
            assert job.state == DONE
            assert job.executions == 2  # the killed claim + the re-run

    def test_reap_happens_only_after_lease_expiry(self, tmp_path):
        """The survivor must wait out the TTL, not steal a live lease."""
        db = tmp_path / "early.db"
        with JobStore(db) as store:
            store.submit(_request(rate=0.5))
            claimed_at = time.time()
            store.claim_next(worker_id="w-held", lease_ttl=2.0, now=claimed_at)
            # Immediately after the claim the lease is live: nothing reaps.
            assert not store.reap_expired(now=claimed_at + 1.0)
            assert store.get(_request(rate=0.5).content_hash).state == RUNNING
            assert store.reap_expired(now=claimed_at + 3.0)
            assert store.get(_request(rate=0.5).content_hash).state == QUEUED


class TestHeartbeatLiveness:
    def test_heartbeats_keep_a_slow_job_from_being_reaped(self, tmp_path):
        """A job slower than the TTL survives as long as its worker beats."""
        db = tmp_path / "slow.db"
        lease_ttl = 0.6
        request = _request(rate=0.7)
        with JobStore(db) as store:
            store.submit(request)

            def slow_execute(req, options, on_stage):
                time.sleep(lease_ttl * 2.5)  # well past the original lease
                return _result(req)

            worker = Worker(
                store,
                worker_id="w-slow",
                lease_ttl=lease_ttl,
                poll_interval=0.05,
                execute=slow_execute,
            )
            runner = threading.Thread(target=worker.run, kwargs={"max_jobs": 1})
            runner.start()
            # An aggressive external reaper runs the whole time; heartbeats
            # must keep the lease ahead of it.
            reaped: list[str] = []
            deadline = time.time() + lease_ttl * 4
            while runner.is_alive() and time.time() < deadline:
                reaped += list(store.reap_expired())
                time.sleep(0.05)
            runner.join(timeout=30.0)
            assert not runner.is_alive()
            assert reaped == []
            job = store.get(request.content_hash)
            assert job.state == DONE
            assert job.executions == 1


class TestSupervisor:
    def test_fleet_spawns_registers_and_respawns(self, tmp_path):
        db = tmp_path / "super.db"
        JobStore(db).close()  # create the schema before workers race to it
        supervisor = WorkerSupervisor(
            db,
            count=2,
            lease_ttl=5.0,
            respawn_delay=0.2,
            monitor_interval=0.1,
        )
        supervisor.start()
        try:
            store = JobStore(db)
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if supervisor.alive == 2 and len(store.list_workers()) == 2:
                    break
                time.sleep(0.1)
            assert supervisor.alive == 2
            workers = store.list_workers()
            assert len(workers) == 2
            fleet_pids = {slot["pid"] for slot in supervisor.fleet_state()}
            assert {w["pid"] for w in workers} == fleet_pids

            # SIGKILL one worker: the monitor must respawn the slot.
            target = supervisor.fleet_state()[0]
            os.kill(target["pid"], signal.SIGKILL)
            deadline = time.time() + 60.0
            while time.time() < deadline:
                state = supervisor.fleet_state()
                if (
                    supervisor.alive == 2
                    and state[0]["restarts"] == 1
                    and state[0]["pid"] != target["pid"]
                ):
                    break
                time.sleep(0.1)
            assert supervisor.alive == 2
            assert supervisor.fleet_state()[0]["restarts"] == 1
            store.close()
        finally:
            assert supervisor.stop(timeout=30.0)
        assert supervisor.alive == 0
