"""Client resilience: reconnect budget, long-poll timeouts, injected faults."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ExperimentRequest, RunOptions
from repro.faults import FaultPlan, FaultRule, clear_plan, install_plan
from repro.serve.client import ServeClient, ServeUnavailableError
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import JobStore


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def idle_service(tmp_path):
    store = JobStore(tmp_path / "serve.db")
    scheduler = Scheduler(store, options=RunOptions(use_cache=False))
    server = ExperimentServer(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServeClient(server.url)
    server.shutdown()
    server.server_close()
    store.close()


class TestWaitReconnectBudget:
    def test_wait_gives_up_after_continuous_outage(self):
        """No service at all: wait() raises ServeUnavailableError once the
        reconnect budget is spent — not a TimeoutError, and not instantly."""
        client = ServeClient("http://127.0.0.1:9", timeout=0.2)
        started = time.monotonic()
        with pytest.raises(ServeUnavailableError):
            client.wait("a" * 64, poll=0.02, reconnect_budget=0.3)
        elapsed = time.monotonic() - started
        assert elapsed >= 0.3  # it really did keep retrying
        assert elapsed < 30.0

    def test_wait_rides_out_a_transient_outage(self, idle_service):
        """Two injected connection failures mid-wait must be absorbed."""
        job = idle_service.submit(_request())["job"]
        idle_service.cancel(job["id"])  # cancelled == inactive: wait returns
        install_plan(
            FaultPlan(
                rules=(
                    FaultRule(site="client.request", action="error", times=2),
                )
            )
        )
        finished = idle_service.wait(
            job["id"], timeout=30.0, poll=0.02, reconnect_budget=10.0
        )
        assert finished["state"] == "cancelled"

    def test_wait_raises_when_budget_smaller_than_outage(self, idle_service):
        job = idle_service.submit(_request())["job"]
        install_plan(
            FaultPlan(
                rules=(
                    FaultRule(
                        site="client.request", action="error", times=None
                    ),
                )
            )
        )
        with pytest.raises(ServeUnavailableError):
            idle_service.wait(job["id"], poll=0.02, reconnect_budget=0.2)


class TestInjectedTransportFaults:
    def test_client_request_fault_maps_to_unavailable(self, idle_service):
        install_plan(
            FaultPlan(rules=(FaultRule(site="client.request", times=1),))
        )
        with pytest.raises(ServeUnavailableError, match="injected fault"):
            idle_service.health()
        assert idle_service.health()["ok"] is True  # next call goes through

    def test_http_response_fault_drops_the_connection(self, idle_service):
        """A server-side response fault looks like a dead connection to the
        client — the absorb-and-retry machinery handles it, not a 5xx."""
        install_plan(
            FaultPlan(rules=(FaultRule(site="http.response", times=1),))
        )
        with pytest.raises(ServeUnavailableError):
            idle_service.health()
        assert idle_service.health()["ok"] is True


class TestEventsTimeout:
    def test_socket_timeout_exceeds_the_poll_timeout(self, idle_service):
        """A 120s long poll must not be killed by the 30s default socket
        timeout — the io timeout derives from the poll timeout."""
        captured = {}
        original = idle_service._call

        def spy(method, path, body=None, timeout=None):
            captured["timeout"] = timeout
            return {"job": "x", "state": "queued", "events": [], "next": 0}

        idle_service._call = spy
        try:
            idle_service.events("a" * 64, timeout=120.0)
        finally:
            idle_service._call = original
        assert captured["timeout"] >= 130.0

    def test_short_polls_keep_the_default_socket_timeout(self, idle_service):
        captured = {}
        original = idle_service._call

        def spy(method, path, body=None, timeout=None):
            captured["timeout"] = timeout
            return {}

        idle_service._call = spy
        try:
            idle_service.events("a" * 64, timeout=1.0)
        finally:
            idle_service._call = original
        # max(default 30s, 1 + 10): the client default dominates.
        assert captured["timeout"] == pytest.approx(30.0)

    def test_events_round_trip_against_a_live_service(self, idle_service):
        job = idle_service.submit(_request())["job"]
        response = idle_service.events(job["id"], timeout=0.1)
        assert response["state"] == "queued"
        assert response["next"] >= 0
