"""The trace/telemetry HTTP surface: /jobs/<id>/trace, /metrics/history."""

from __future__ import annotations

import os

import pytest

from repro.obs.sink import ProcessTelemetry
from repro.serve.client import ServeError

from test_obs_endpoints import StageExecutor, _Service, _request


@pytest.fixture
def running(tmp_path):
    service = _Service(tmp_path, execute=StageExecutor(), start=True)
    # The front-end process's telemetry agent, spooling the global TRACE
    # ring (exactly what `repro serve` starts) into serve.db.obs/.
    telemetry = ProcessTelemetry(
        tmp_path / "serve.db", worker_id="frontend", snapshot_interval=0
    ).start()
    yield service
    telemetry.stop()
    service.close()


class TestSubmitCarriesTraceId:
    def test_submitted_job_is_born_with_a_trace_id(self, running):
        job = running.client.submit(_request())["job"]
        assert job["trace_id"] and len(job["trace_id"]) == 32

    def test_client_supplied_trace_id_is_honored(self, running):
        job = running.client.submit(_request(rate=0.11), trace_id="t" * 32)
        assert job["job"]["trace_id"] == "t" * 32

    def test_dedup_attach_keeps_the_first_trace_id(self, running):
        first = running.client.submit(_request(rate=0.12), trace_id="a" * 32)
        second = running.client.submit(_request(rate=0.12), trace_id="b" * 32)
        assert second["deduped"] is True
        assert second["job"]["trace_id"] == "a" * 32

    def test_non_string_trace_id_is_400(self, running):
        with pytest.raises(ServeError) as excinfo:
            running.client._call(
                "POST", "/jobs",
                {"request": _request(rate=0.13).to_dict(), "trace_id": 7},
            )
        assert excinfo.value.status == 400


class TestTraceEndpoint:
    def test_trace_merges_submit_and_execute_spans(self, running):
        job = running.client.submit(_request(rate=0.2))["job"]
        running.client.wait(job["id"], timeout=30.0, poll=0.02)
        document = running.client.trace(job["id"])
        meta = document["metadata"]
        assert meta["job_id"] == job["id"]
        assert meta["trace_id"] == job["trace_id"]
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        # The front-end's submit span and the scheduler's execute span both
        # landed in the one merged document, plus the synthetic queue wait.
        assert {"http.submit", "scheduler.execute", "queue.wait"} <= names
        assert meta["queue_wait_s"] is not None
        assert meta["queue_wait_s"] >= 0.0
        assert meta["span_count"] >= 2

    def test_queue_wait_matches_the_job_row(self, running):
        job = running.client.submit(_request(rate=0.3))["job"]
        finished = running.client.wait(job["id"], timeout=30.0, poll=0.02)
        meta = running.client.trace(job["id"])["metadata"]
        expected = finished["started_at"] - max(
            finished["created_at"], finished["not_before"] or 0.0
        )
        assert meta["queue_wait_s"] == pytest.approx(max(0.0, expected), abs=1e-6)

    def test_unknown_job_is_404(self, running):
        with pytest.raises(ServeError) as excinfo:
            running.client.trace("doesnotexist")
        assert excinfo.value.status == 404

    def test_pre_tracing_job_yields_an_empty_trace(self, running):
        """A NULL-trace_id row (migrated v3 data) must not 500."""
        running.client.submit(_request(rate=0.4))
        store = running.store
        store._conn.execute("UPDATE jobs SET trace_id=NULL")
        store._conn.commit()
        job = running.client.jobs()[0]
        document = running.client.trace(job["id"])
        assert document["metadata"]["trace_id"] is None
        assert document["metadata"]["span_count"] == 0


class TestMetricsHistory:
    def test_history_returns_snapshots_with_process_list(self, running, tmp_path):
        # Force a couple of snapshots without waiting out the interval.
        agent = ProcessTelemetry(
            tmp_path / "serve.db", worker_id="frontend", snapshot_interval=0
        )
        agent.ring.snapshot(now=100.0)
        agent.ring.snapshot(now=101.0)
        body = running.client.metrics_history()
        assert len(body["history"]) >= 2
        assert body["processes"] == sorted(set(body["processes"]))
        assert os.getpid() in [entry["pid"] for entry in body["history"]]
        entry = body["history"][-1]
        assert entry["worker_id"] == "frontend"
        assert isinstance(entry["metrics"], dict)

    def test_since_and_limit_parameters(self, running, tmp_path):
        agent = ProcessTelemetry(tmp_path / "serve.db", snapshot_interval=0)
        for ts in (10.0, 20.0, 30.0):
            agent.ring.snapshot(now=ts)
        newest = running.client.metrics_history(limit=1)
        assert len(newest["history"]) == 1
        assert newest["history"][0]["ts"] == 30.0
        later = running.client.metrics_history(since=15.0)
        assert [entry["ts"] for entry in later["history"]] == [20.0, 30.0]

    def test_bad_limit_is_400(self, running):
        for bad in ("0", "nope"):
            with pytest.raises(ServeError) as excinfo:
                running.client._call("GET", f"/metrics/history?limit={bad}")
            assert excinfo.value.status == 400

    def test_empty_history_is_not_an_error(self, tmp_path):
        service = _Service(tmp_path, execute=StageExecutor(), start=False)
        try:
            body = service.client.metrics_history()
            assert body["history"] == []
            assert body["processes"] == []
        finally:
            service.close()
