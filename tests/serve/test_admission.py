"""Admission control: queue-depth cap, 503 + Retry-After, client backoff."""

from __future__ import annotations

import threading

import pytest

from repro.api import ExperimentRequest, RunOptions
from repro.serve.client import ServeBusyError, ServeClient
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import JobStore


def _request(rate: float = 0.9) -> ExperimentRequest:
    return ExperimentRequest(experiment="fig8", pruning_rate=rate)


@pytest.fixture
def capped_service(tmp_path):
    """Idle scheduler (jobs stay queued) behind a max_queue_depth=1 server."""
    store = JobStore(tmp_path / "serve.db")
    scheduler = Scheduler(store, options=RunOptions(use_cache=False))
    server = ExperimentServer(
        scheduler, port=0, max_queue_depth=1, admission_retry_after=0.05
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServeClient(server.url)
    server.shutdown()
    server.server_close()
    store.close()


class TestRefusal:
    def test_submission_over_the_cap_is_refused_with_retry_after(
        self, capped_service
    ):
        assert capped_service.submit(_request(rate=0.1))["job"]
        with pytest.raises(ServeBusyError) as excinfo:
            capped_service.submit(_request(rate=0.2), admission_retries=0)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(0.05)
        assert "queue" in excinfo.value.message

    def test_duplicate_submission_is_always_admitted(self, capped_service):
        """An attach adds no queue depth — refusing it would break clients
        polling for a result they already queued."""
        capped_service.submit(_request(rate=0.1))
        response = capped_service.submit(
            _request(rate=0.1), admission_retries=0
        )
        assert response["deduped"] is True

    def test_refused_job_is_not_recorded(self, capped_service):
        capped_service.submit(_request(rate=0.1))
        with pytest.raises(ServeBusyError):
            capped_service.submit(_request(rate=0.2), admission_retries=0)
        ids = {job["id"] for job in capped_service.jobs()}
        assert _request(rate=0.2).content_hash not in ids

    def test_cancelling_frees_a_queue_slot(self, capped_service):
        first = capped_service.submit(_request(rate=0.1))["job"]
        with pytest.raises(ServeBusyError):
            capped_service.submit(_request(rate=0.2), admission_retries=0)
        capped_service.cancel(first["id"])
        admitted = capped_service.submit(
            _request(rate=0.2), admission_retries=0
        )
        assert admitted["job"]["state"] == "queued"


class TestClientBackoff:
    def test_submit_retries_until_a_slot_frees(
        self, capped_service, monkeypatch
    ):
        """The client sleeps the hinted Retry-After (with jitter) between
        attempts; once capacity frees, the retried submit is admitted."""
        blocker = capped_service.submit(_request(rate=0.1))["job"]
        sleeps: list[float] = []

        def sleep_then_free(seconds: float) -> None:
            sleeps.append(seconds)
            capped_service.cancel(blocker["id"])  # capacity frees mid-backoff

        import repro.serve.client as client_module

        monkeypatch.setattr(client_module.time, "sleep", sleep_then_free)
        response = capped_service.submit(
            _request(rate=0.2), admission_retries=3
        )
        assert response["job"]["state"] == "queued"
        assert len(sleeps) == 1
        # Retry-After plus up to 25% jitter, never less than the hint.
        assert 0.05 <= sleeps[0] <= 0.05 * 1.25

    def test_exhausted_retries_surface_the_busy_error(
        self, capped_service, monkeypatch
    ):
        capped_service.submit(_request(rate=0.1))
        import repro.serve.client as client_module

        sleeps: list[float] = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: sleeps.append(s)
        )
        with pytest.raises(ServeBusyError):
            capped_service.submit(_request(rate=0.2), admission_retries=2)
        assert len(sleeps) == 2  # slept between the 3 attempts, then raised

    def test_stats_count_admission_rejections(self, capped_service):
        capped_service.submit(_request(rate=0.1))
        with pytest.raises(ServeBusyError):
            capped_service.submit(_request(rate=0.2), admission_retries=0)
        stats = capped_service.stats()
        assert stats["jobs"]["admission_rejected"] >= 1


class TestUncappedDefault:
    def test_no_cap_admits_everything(self, tmp_path):
        store = JobStore(tmp_path / "serve.db")
        scheduler = Scheduler(store, options=RunOptions(use_cache=False))
        server = ExperimentServer(scheduler, port=0)  # max_queue_depth=None
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            for index in range(10):
                client.submit(
                    _request(rate=0.01 + index * 0.05), admission_retries=0
                )
            assert len(client.jobs()) == 10
        finally:
            server.shutdown()
            server.server_close()
            store.close()

    def test_cap_must_be_positive(self, tmp_path):
        store = JobStore(tmp_path / "serve.db")
        scheduler = Scheduler(store, options=RunOptions(use_cache=False))
        try:
            with pytest.raises(ValueError, match="max_queue_depth"):
                ExperimentServer(scheduler, port=0, max_queue_depth=0)
        finally:
            store.close()
