"""Tests for the reference Algorithm 1 implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pruning.algorithm import (
    AlgorithmTrace,
    prune_gradient_batches,
    prune_single_pass,
)
from repro.pruning.stochastic import density


def _make_batches(rng, count=12, size=4096, sigma=1e-3):
    return [rng.normal(0.0, sigma, size=size) for _ in range(count)]


class TestPruneGradientBatches:
    def test_warm_up_batches_pass_through(self, rng):
        batches = _make_batches(rng, count=6)
        pruned = prune_gradient_batches(batches, 0.9, fifo_depth=3, rng=rng)
        for original, result in zip(batches[:3], pruned[:3]):
            np.testing.assert_array_equal(original, result)

    def test_post_warm_up_batches_are_pruned(self, rng):
        batches = _make_batches(rng, count=10)
        pruned = prune_gradient_batches(batches, 0.9, fifo_depth=3, rng=rng)
        for result in pruned[3:]:
            assert density(result) < 0.6

    def test_output_length_matches_input(self, rng):
        batches = _make_batches(rng, count=5)
        assert len(prune_gradient_batches(batches, 0.8, 2, rng)) == 5

    def test_trace_records_thresholds_and_densities(self, rng):
        batches = _make_batches(rng, count=8)
        trace = AlgorithmTrace()
        prune_gradient_batches(batches, 0.9, 3, rng, trace=trace)
        assert len(trace.exact_thresholds) == 8
        assert len(trace.predicted_thresholds) == 8
        assert trace.predicted_thresholds[0] is None
        assert trace.predicted_thresholds[-1] is not None
        assert len(trace.densities_after) == 8

    def test_prediction_error_small_for_stationary_stream(self, rng):
        batches = _make_batches(rng, count=24, size=8192)
        trace = AlgorithmTrace()
        prune_gradient_batches(batches, 0.9, 5, rng, trace=trace)
        errors = trace.prediction_errors
        assert errors
        assert float(np.mean(errors)) < 0.1

    def test_realised_density_close_to_expected(self, rng):
        from repro.pruning.threshold import expected_density_after_pruning

        batches = _make_batches(rng, count=20, size=16384)
        pruned = prune_gradient_batches(batches, 0.9, 4, rng)
        realised = float(np.mean([density(b) for b in pruned[4:]]))
        assert realised == pytest.approx(expected_density_after_pruning(0.9), abs=0.05)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            prune_gradient_batches([np.zeros(4)], 1.5, 2, rng)
        with pytest.raises(ValueError):
            prune_gradient_batches([np.zeros(4)], 0.5, 0, rng)


class TestPruneSinglePass:
    def test_density_reduced(self, rng):
        gradients = rng.normal(0.0, 1e-3, size=8192)
        pruned = prune_single_pass(gradients, 0.9, rng)
        assert density(pruned) < 0.6

    def test_zero_target_is_identity(self, rng):
        gradients = rng.normal(size=512)
        np.testing.assert_array_equal(prune_single_pass(gradients, 0.0, rng), gradients)

    def test_matches_fifo_scheme_in_expectation(self, rng):
        """The FIFO-predicted scheme should prune about as much as the exact scheme."""
        batches = _make_batches(rng, count=30, size=8192)
        fifo_pruned = prune_gradient_batches(batches, 0.9, 5, np.random.default_rng(0))
        exact_pruned = [prune_single_pass(b, 0.9, np.random.default_rng(1)) for b in batches]
        fifo_density = float(np.mean([density(b) for b in fifo_pruned[5:]]))
        exact_density = float(np.mean([density(b) for b in exact_pruned[5:]]))
        assert fifo_density == pytest.approx(exact_density, abs=0.05)
