"""Tests for threshold determination, FIFO prediction and the density model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.stochastic import density, stochastic_prune
from repro.pruning.threshold import (
    ThresholdFIFO,
    ThresholdPredictor,
    determine_threshold,
    determine_threshold_from_abs_sum,
    estimate_sigma,
    expected_density_after_pruning,
    quantile_factor,
)


class TestSigmaEstimation:
    def test_estimate_sigma_on_normal_data(self):
        rng = np.random.default_rng(0)
        for sigma in (0.1, 1.0, 5.0):
            data = rng.normal(0.0, sigma, size=200_000)
            assert estimate_sigma(data) == pytest.approx(sigma, rel=0.02)

    def test_estimate_sigma_empty(self):
        assert estimate_sigma(np.array([])) == 0.0

    def test_estimate_sigma_scales_linearly(self, rng):
        data = rng.normal(size=10_000)
        assert estimate_sigma(3.0 * data) == pytest.approx(3.0 * estimate_sigma(data), rel=1e-9)


class TestQuantileFactor:
    def test_known_values(self):
        # P(|Z| < 1.6449) ~ 0.90 for a standard normal.
        assert quantile_factor(0.9) == pytest.approx(1.6449, abs=1e-3)
        assert quantile_factor(0.0) == 0.0
        assert quantile_factor(1.0) == float("inf")

    def test_monotonically_increasing(self):
        values = [quantile_factor(p) for p in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantile_factor(1.5)


class TestDetermineThreshold:
    def test_realised_sparsity_matches_target_on_normal_gradients(self):
        rng = np.random.default_rng(3)
        gradients = rng.normal(0.0, 0.01, size=100_000)
        for target in (0.5, 0.8, 0.9, 0.99):
            threshold = determine_threshold(gradients, target)
            below = np.mean(np.abs(gradients) < threshold)
            assert below == pytest.approx(target, abs=0.01)

    def test_streaming_form_matches_tensor_form(self, rng):
        gradients = rng.normal(size=5000)
        tensor_threshold = determine_threshold(gradients, 0.9)
        streaming_threshold = determine_threshold_from_abs_sum(
            float(np.abs(gradients).sum()), gradients.size, 0.9
        )
        assert streaming_threshold == pytest.approx(tensor_threshold, rel=1e-12)

    def test_zero_target_gives_zero_threshold(self, rng):
        assert determine_threshold(rng.normal(size=100), 0.0) == 0.0

    def test_empty_count_gives_zero(self):
        assert determine_threshold_from_abs_sum(0.0, 0, 0.9) == 0.0


class TestThresholdFIFO:
    def test_not_full_returns_none(self):
        fifo = ThresholdFIFO(3)
        fifo.push(1.0)
        fifo.push(2.0)
        assert not fifo.is_full
        assert fifo.predict() is None

    def test_full_returns_mean(self):
        fifo = ThresholdFIFO(3)
        for value in (1.0, 2.0, 3.0):
            fifo.push(value)
        assert fifo.is_full
        assert fifo.predict() == pytest.approx(2.0)

    def test_oldest_evicted(self):
        fifo = ThresholdFIFO(2)
        for value in (1.0, 2.0, 3.0):
            fifo.push(value)
        assert fifo.values() == [2.0, 3.0]

    def test_rejects_invalid_thresholds(self):
        fifo = ThresholdFIFO(2)
        with pytest.raises(ValueError):
            fifo.push(-1.0)
        with pytest.raises(ValueError):
            fifo.push(float("inf"))

    def test_rejects_invalid_depth(self):
        with pytest.raises(ValueError):
            ThresholdFIFO(0)

    def test_clear(self):
        fifo = ThresholdFIFO(1)
        fifo.push(1.0)
        fifo.clear()
        assert len(fifo) == 0
        assert fifo.predict() is None


class TestThresholdPredictor:
    def test_warm_up_then_predict(self, rng):
        predictor = ThresholdPredictor(target_sparsity=0.9, fifo_depth=2)
        assert predictor.current_threshold() is None
        predictor.observe(rng.normal(size=1000))
        assert predictor.current_threshold() is None
        predictor.observe(rng.normal(size=1000))
        assert predictor.current_threshold() is not None
        assert predictor.batches_observed == 2

    def test_prediction_tracks_stationary_distribution(self):
        rng = np.random.default_rng(0)
        predictor = ThresholdPredictor(target_sparsity=0.9, fifo_depth=5)
        for _ in range(5):
            predictor.observe(rng.normal(0.0, 1.0, size=20_000))
        exact = determine_threshold(rng.normal(0.0, 1.0, size=20_000), 0.9)
        assert predictor.current_threshold() == pytest.approx(exact, rel=0.05)

    def test_observe_streaming_consistent(self, rng):
        gradients = rng.normal(size=4096)
        a = ThresholdPredictor(0.8, 1)
        b = ThresholdPredictor(0.8, 1)
        a.observe(gradients)
        b.observe_streaming(float(np.abs(gradients).sum()), gradients.size)
        assert a.current_threshold() == pytest.approx(b.current_threshold(), rel=1e-12)


class TestExpectedDensity:
    def test_boundary_values(self):
        assert expected_density_after_pruning(0.0) == 1.0
        assert expected_density_after_pruning(1.0) == 0.0
        assert expected_density_after_pruning(0.0, natural_density=0.3) == 0.3

    def test_monotonically_decreasing_in_p(self):
        densities = [expected_density_after_pruning(p) for p in (0.1, 0.5, 0.9, 0.99)]
        assert densities == sorted(densities, reverse=True)

    @pytest.mark.parametrize("target", [0.7, 0.9, 0.99])
    def test_matches_monte_carlo(self, target):
        rng = np.random.default_rng(5)
        gradients = rng.normal(0.0, 1.0, size=200_000)
        threshold = determine_threshold(gradients, target)
        pruned = stochastic_prune(gradients, threshold, np.random.default_rng(6))
        assert density(pruned) == pytest.approx(
            expected_density_after_pruning(target), abs=0.01
        )

    def test_scales_with_natural_density(self):
        full = expected_density_after_pruning(0.9, 1.0)
        half = expected_density_after_pruning(0.9, 0.5)
        assert half == pytest.approx(full / 2.0)

    @settings(max_examples=20, deadline=None)
    @given(p=st.floats(0.01, 0.99), natural=st.floats(0.01, 1.0))
    def test_property_bounded(self, p, natural):
        value = expected_density_after_pruning(p, natural)
        assert 0.0 <= value <= natural + 1e-12
