"""Tests for pruning-site detection and the model-level controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.alexnet import build_alexnet
from repro.models.resnet import build_resnet
from repro.nn import SGD, Trainer
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    DepthwiseSeparableBlock,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.pruning import (
    PruneSide,
    PruningConfig,
    PruningController,
    find_pruning_sites,
)
from repro.pruning.layer_pruner import LayerPruner
from repro.utils.rng import new_rng


class TestFindPruningSites:
    def test_conv_relu_structure_prunes_input_gradient(self, rng):
        model = Sequential([Conv2D(3, 4, 3, rng=rng, name="c1"), ReLU()])
        sites = find_pruning_sites(model)
        assert len(sites) == 1
        assert sites[0].side is PruneSide.INPUT_GRAD

    def test_conv_bn_relu_structure_prunes_output_gradient(self, rng):
        model = Sequential(
            [Conv2D(3, 4, 3, rng=rng, name="c1"), BatchNorm2D(4), ReLU()]
        )
        sites = find_pruning_sites(model)
        assert sites[0].side is PruneSide.OUTPUT_GRAD

    def test_pooling_between_conv_and_relu_is_transparent(self, rng):
        model = Sequential(
            [Conv2D(3, 4, 3, rng=rng, name="c1"), MaxPool2D(2), ReLU()]
        )
        sites = find_pruning_sites(model)
        assert sites[0].side is PruneSide.INPUT_GRAD

    def test_alexnet_sites_are_all_input_grad(self):
        model = build_alexnet(width_scale=0.1, rng=new_rng(0))
        sites = find_pruning_sites(model)
        assert len(sites) == 5
        assert all(site.side is PruneSide.INPUT_GRAD for site in sites)

    def test_resnet_sites_are_all_output_grad(self):
        model = build_resnet(blocks_per_stage=(1, 1), base_width=8, rng=new_rng(0))
        sites = find_pruning_sites(model)
        # stem + 2 blocks x 2 convs + 1 downsample conv = 6 sites
        assert len(sites) == 6
        conv_names = {site.name for site in sites}
        assert "stem.conv" in conv_names
        non_stem = [s for s in sites if s.name != "stem.conv"]
        assert all(site.side is PruneSide.OUTPUT_GRAD for site in non_stem)

    def test_bare_conv_layer(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        sites = find_pruning_sites(conv)
        assert len(sites) == 1 and sites[0].layer is conv

    def test_depthwise_separable_block_prunes_output_gradients(self, rng):
        block = DepthwiseSeparableBlock(4, 8, rng=rng, name="dsb")
        sites = find_pruning_sites(block)
        # Depthwise conv (grouped weight tensor) and pointwise conv both sit
        # in Conv-BN-ReLU structures -> both prune dO.
        assert [site.name for site in sites] == ["dsb.dw", "dsb.pw"]
        assert all(site.side is PruneSide.OUTPUT_GRAD for site in sites)
        assert sites[0].layer.groups == 4
        assert sites[0].layer.weight.data.shape == (4, 1, 3, 3)

    def test_depthwise_block_inside_sequential(self, rng):
        model = Sequential(
            [
                Conv2D(3, 4, 3, rng=rng, name="stem"),
                ReLU(),
                DepthwiseSeparableBlock(4, 8, rng=rng, name="dsb"),
            ]
        )
        sites = find_pruning_sites(model)
        assert [site.name for site in sites] == ["stem", "dsb.dw", "dsb.pw"]
        assert sites[0].side is PruneSide.INPUT_GRAD


class TestLayerPruner:
    def test_warm_up_then_pruning(self, rng):
        config = PruningConfig(target_sparsity=0.9, fifo_depth=2, min_elements=1)
        pruner = LayerPruner("test", config, rng)
        batches = [rng.normal(0.0, 1e-3, size=2048) for _ in range(6)]
        results = [pruner.prune(b) for b in batches]
        # First two batches pass through unchanged (FIFO warm-up).
        np.testing.assert_array_equal(results[0], batches[0])
        np.testing.assert_array_equal(results[1], batches[1])
        # Later batches are pruned.
        assert np.count_nonzero(results[-1]) < 0.6 * batches[-1].size
        assert pruner.stats.batches_pruned == 4

    def test_small_tensors_skipped(self, rng):
        config = PruningConfig(target_sparsity=0.9, fifo_depth=1, min_elements=1000)
        pruner = LayerPruner("test", config, rng)
        small = rng.normal(size=10)
        np.testing.assert_array_equal(pruner.prune(small), small)
        assert pruner.stats.batches_pruned == 0

    def test_disabled_pruner_is_identity(self, rng):
        config = PruningConfig(target_sparsity=0.9, fifo_depth=1, min_elements=1)
        pruner = LayerPruner("test", config, rng)
        pruner.enabled = False
        data = rng.normal(size=2048)
        np.testing.assert_array_equal(pruner.prune(data), data)

    def test_non_predictive_mode_prunes_first_batch(self, rng):
        config = PruningConfig(
            target_sparsity=0.9, fifo_depth=5, min_elements=1, use_prediction=False
        )
        pruner = LayerPruner("test", config, rng)
        batch = rng.normal(0.0, 1e-3, size=4096)
        pruned = pruner.prune(batch)
        assert np.count_nonzero(pruned) < 0.6 * batch.size


class TestPruningConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PruningConfig(target_sparsity=1.5)
        with pytest.raises(ValueError):
            PruningConfig(fifo_depth=0)

    def test_with_sparsity(self):
        config = PruningConfig(target_sparsity=0.7, fifo_depth=9)
        updated = config.with_sparsity(0.99)
        assert updated.target_sparsity == 0.99
        assert updated.fifo_depth == 9


class TestPruningController:
    def _train(self, model, dataset, controller, epochs=2, lr=0.05):
        trainer = Trainer(
            model, SGD(model.parameters(), lr=lr, momentum=0.9), callbacks=[controller]
        )
        return trainer.fit(
            dataset.images, dataset.labels, epochs=epochs, batch_size=32,
            shuffle_rng=np.random.default_rng(0),
        )

    def test_reduces_gradient_density_on_resnet(self, tiny_dataset):
        model = build_resnet(
            num_classes=tiny_dataset.num_classes, image_size=8,
            blocks_per_stage=(1,), base_width=8, rng=new_rng(0),
        )
        controller = PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=2))
        self._train(model, tiny_dataset, controller)
        report = controller.density_report()
        assert report.mean_density_before > 0.9  # BN makes dO dense
        assert report.mean_density_after < 0.6
        assert report.density_reduction > 1.5

    def test_training_still_converges_with_pruning(self, tiny_dataset):
        model = build_resnet(
            num_classes=tiny_dataset.num_classes, image_size=8,
            blocks_per_stage=(1,), base_width=8, rng=new_rng(1),
        )
        controller = PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=2))
        history = self._train(model, tiny_dataset, controller, epochs=4, lr=0.1)
        assert history.final_train_accuracy > 0.5

    def test_disable_enable(self, tiny_dataset, rng):
        model = build_resnet(
            num_classes=tiny_dataset.num_classes, image_size=8,
            blocks_per_stage=(1,), base_width=8, rng=new_rng(2),
        )
        controller = PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=1))
        controller.disable()
        assert all(not p.enabled for p in controller.pruners)
        controller.enable()
        assert all(p.enabled for p in controller.pruners)

    def test_layer_densities_mapping(self, tiny_dataset):
        model = build_alexnet(
            num_classes=tiny_dataset.num_classes, image_size=8, width_scale=0.1, rng=new_rng(3)
        )
        controller = PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=2))
        self._train(model, tiny_dataset, controller, epochs=1, lr=0.01)
        densities = controller.layer_densities()
        assert set(densities) == {"conv1", "conv2", "conv3", "conv4", "conv5"}
        assert all(0.0 <= v <= 1.0 for v in densities.values())

    def test_detach_removes_hooks(self, rng):
        model = Sequential([Conv2D(3, 4, 3, rng=rng, name="c1"), ReLU()])
        controller = PruningController(model, PruningConfig())
        assert model.layers[0]._grad_input_hooks
        controller.detach()
        assert not model.layers[0]._grad_input_hooks

    def test_explicit_sites_subset(self, rng):
        model = build_alexnet(width_scale=0.1, rng=new_rng(4))
        all_sites = find_pruning_sites(model)
        controller = PruningController(model, PruningConfig(), sites=all_sites[:2])
        assert len(controller.pruners) == 2
