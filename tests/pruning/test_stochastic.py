"""Tests for stochastic pruning, including property-based unbiasedness checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.stochastic import (
    PruningResult,
    density,
    prune_with_stats,
    stochastic_prune,
)


class TestDensity:
    def test_density_of_mixed_array(self):
        assert density(np.array([0.0, 1.0, 0.0, 2.0])) == pytest.approx(0.5)

    def test_density_of_empty_array(self):
        assert density(np.array([])) == 0.0

    def test_density_of_all_zeros(self):
        assert density(np.zeros((3, 3))) == 0.0


class TestStochasticPrune:
    def test_values_above_threshold_untouched(self, rng):
        gradients = np.array([1.0, -2.0, 0.5, -0.6])
        pruned = stochastic_prune(gradients, threshold=0.4, rng=rng)
        np.testing.assert_array_equal(pruned, gradients)

    def test_values_below_threshold_become_zero_or_threshold(self, rng):
        gradients = rng.uniform(-0.1, 0.1, size=1000)
        threshold = 0.5
        pruned = stochastic_prune(gradients, threshold, rng)
        unique_magnitudes = set(np.round(np.abs(pruned[pruned != 0.0]), 12))
        assert unique_magnitudes.issubset({threshold})

    def test_sign_preserved_when_snapped(self, rng):
        gradients = np.array([0.01, -0.01] * 500)
        pruned = stochastic_prune(gradients, 1.0, rng)
        assert np.all(pruned[::2] >= 0.0)
        assert np.all(pruned[1::2] <= 0.0)

    def test_zero_threshold_disables_pruning(self, rng):
        gradients = rng.normal(size=100)
        np.testing.assert_array_equal(stochastic_prune(gradients, 0.0, rng), gradients)

    def test_negative_and_nonfinite_threshold_disable_pruning(self, rng):
        gradients = rng.normal(size=10)
        np.testing.assert_array_equal(stochastic_prune(gradients, -1.0, rng), gradients)
        np.testing.assert_array_equal(
            stochastic_prune(gradients, float("nan"), rng), gradients
        )

    def test_input_not_modified(self, rng):
        gradients = rng.normal(size=50)
        original = gradients.copy()
        stochastic_prune(gradients, 1.0, rng)
        np.testing.assert_array_equal(gradients, original)

    def test_exact_zeros_stay_zero(self, rng):
        gradients = np.zeros(100)
        pruned = stochastic_prune(gradients, 0.5, rng)
        np.testing.assert_array_equal(pruned, gradients)

    def test_shape_and_dtype_preserved(self, rng):
        gradients = rng.normal(size=(3, 4, 5))
        pruned = stochastic_prune(gradients, 0.1, rng)
        assert pruned.shape == gradients.shape
        assert pruned.dtype == np.float64

    def test_expectation_preserved(self):
        """The core property: E[prune(g)] == g componentwise."""
        rng = np.random.default_rng(0)
        value = 0.3
        threshold = 1.0
        samples = np.array(
            [stochastic_prune(np.array([value]), threshold, rng)[0] for _ in range(4000)]
        )
        assert samples.mean() == pytest.approx(value, abs=0.03)

    def test_keep_probability_matches_magnitude(self):
        rng = np.random.default_rng(1)
        value, threshold = 0.25, 1.0
        kept = [
            stochastic_prune(np.array([value]), threshold, rng)[0] != 0.0
            for _ in range(4000)
        ]
        assert np.mean(kept) == pytest.approx(value / threshold, abs=0.03)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        threshold=st.floats(0.05, 5.0),
        scale=st.floats(0.01, 10.0),
    )
    def test_property_magnitudes_never_decrease_below_zero_or_exceed_original(
        self, seed, threshold, scale
    ):
        """Pruned values are either 0, +/-tau, or the original value."""
        rng = np.random.default_rng(seed)
        gradients = rng.normal(0.0, scale, size=256)
        pruned = stochastic_prune(gradients, threshold, np.random.default_rng(seed + 1))
        below = np.abs(gradients) < threshold
        # Above-threshold entries unchanged.
        np.testing.assert_array_equal(pruned[~below], gradients[~below])
        # Below-threshold entries are 0 or +/- tau with the original sign.
        snapped = pruned[below]
        zero_or_tau = np.isclose(np.abs(snapped), threshold) | (snapped == 0.0)
        assert np.all(zero_or_tau)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_property_mean_preserved_for_batches(self, seed):
        """Sum of pruned gradients stays close to the original sum."""
        rng = np.random.default_rng(seed)
        gradients = rng.normal(0.0, 1e-3, size=20_000)
        threshold = 2e-3
        pruned = stochastic_prune(gradients, threshold, np.random.default_rng(seed + 7))
        # Standard error of the stochastic rounding is ~tau/sqrt(n).
        tolerance = 6 * threshold * np.sqrt(gradients.size)
        assert abs(pruned.sum() - gradients.sum()) < tolerance


class TestPruneWithStats:
    def test_reports_density_reduction(self, rng):
        gradients = rng.normal(0.0, 1.0, size=2000)
        result = prune_with_stats(gradients, threshold=1.0, rng=rng)
        assert isinstance(result, PruningResult)
        assert result.density_before == pytest.approx(1.0)
        assert result.density_after < result.density_before
        assert result.sparsity_after == pytest.approx(1.0 - result.density_after)

    def test_threshold_recorded(self, rng):
        result = prune_with_stats(rng.normal(size=10), threshold=0.5, rng=rng)
        assert result.threshold == pytest.approx(0.5)
