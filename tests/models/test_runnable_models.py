"""Tests for the runnable (reduced) AlexNet and ResNet numpy models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.alexnet import build_alexnet
from repro.models.resnet import build_resnet
from repro.utils.rng import new_rng


class TestBuildAlexNet:
    def test_forward_output_shape(self):
        model = build_alexnet(num_classes=5, image_size=16, width_scale=0.2, rng=new_rng(0))
        logits = model.forward(np.random.default_rng(0).normal(size=(3, 3, 16, 16)))
        assert logits.shape == (3, 5)

    def test_backward_produces_gradients(self):
        model = build_alexnet(num_classes=4, image_size=8, width_scale=0.1, rng=new_rng(1))
        logits = model.forward(np.random.default_rng(1).normal(size=(2, 3, 8, 8)))
        model.backward(np.ones_like(logits))
        assert all(p.grad is not None for p in model.parameters())

    def test_width_scale_changes_parameter_count(self):
        small = build_alexnet(width_scale=0.1, rng=new_rng(2))
        large = build_alexnet(width_scale=0.3, rng=new_rng(2))
        count = lambda m: sum(p.size for p in m.parameters())
        assert count(large) > count(small)

    def test_dropout_layer_optional(self):
        with_dropout = build_alexnet(dropout=0.5, rng=new_rng(3))
        without = build_alexnet(dropout=0.0, rng=new_rng(3))
        assert len(with_dropout.layers) == len(without.layers) + 1

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            build_alexnet(image_size=12)

    def test_five_convolutions_named_like_alexnet(self):
        from repro.sparsity import iter_convs

        model = build_alexnet(width_scale=0.1, rng=new_rng(4))
        assert [c.name for c in iter_convs(model)] == [f"conv{i}" for i in range(1, 6)]


class TestBuildResNet:
    def test_forward_output_shape(self):
        model = build_resnet(
            num_classes=6, image_size=16, blocks_per_stage=(1, 1), base_width=8, rng=new_rng(0)
        )
        logits = model.forward(np.random.default_rng(0).normal(size=(2, 3, 16, 16)))
        assert logits.shape == (2, 6)

    def test_backward_produces_gradients(self):
        model = build_resnet(blocks_per_stage=(1,), base_width=8, rng=new_rng(1))
        logits = model.forward(np.random.default_rng(1).normal(size=(2, 3, 16, 16)))
        model.backward(np.ones_like(logits))
        assert all(p.grad is not None for p in model.parameters())

    def test_stage_count_affects_depth(self):
        shallow = build_resnet(blocks_per_stage=(1,), base_width=8, rng=new_rng(2))
        deep = build_resnet(blocks_per_stage=(1, 1, 1), base_width=8, rng=new_rng(2))
        from repro.sparsity import iter_convs

        assert len(list(iter_convs(deep))) > len(list(iter_convs(shallow)))

    def test_rejects_empty_stages(self):
        with pytest.raises(ValueError):
            build_resnet(blocks_per_stage=())

    def test_rejects_too_small_image(self):
        with pytest.raises(ValueError):
            build_resnet(image_size=2, blocks_per_stage=(1, 1, 1, 1, 1))

    def test_gradient_check_tiny_resnet(self, num_grad):
        model = build_resnet(
            num_classes=2, image_size=8, blocks_per_stage=(1,), base_width=4, rng=new_rng(3)
        )
        x = np.random.default_rng(3).normal(size=(2, 3, 8, 8))
        out = model.forward(x)
        grad_out = np.random.default_rng(4).normal(size=out.shape)
        grad_in = model.backward(grad_out)

        def loss():
            return float(np.sum(model.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-4)
