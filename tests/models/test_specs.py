"""Tests for model shape specifications (AlexNet, ResNet, zoo lookups)."""

from __future__ import annotations

import pytest

from repro.models.alexnet import alexnet_cifar_spec, alexnet_imagenet_spec
from repro.models.resnet import resnet_spec, supported_depths
from repro.models.spec import ConvLayerSpec, ConvStructure, LinearLayerSpec, ModelSpec
from repro.models.zoo import get_model_spec, paper_workloads, table2_workloads


class TestConvLayerSpec:
    def test_output_geometry(self):
        layer = ConvLayerSpec("c", 3, 64, 11, 4, 2, 224, 224)
        assert layer.out_height == 55
        assert layer.out_width == 55

    def test_mac_counts(self):
        layer = ConvLayerSpec("c", 3, 4, 3, 1, 1, 8, 8)
        expected_forward = 4 * 8 * 8 * 3 * 3 * 3
        assert layer.forward_macs == expected_forward
        assert layer.gta_macs == expected_forward
        assert layer.gtw_macs == expected_forward
        assert layer.training_macs == 3 * expected_forward

    def test_sizes(self):
        layer = ConvLayerSpec("c", 3, 4, 3, 1, 1, 8, 8)
        assert layer.weight_count == 3 * 4 * 9
        assert layer.input_size == 3 * 64
        assert layer.output_size == 4 * 64

    def test_relu_mask_availability(self):
        with_mask = ConvLayerSpec("a", 3, 4, 3, 1, 1, 8, 8, ConvStructure.CONV_RELU)
        without = ConvLayerSpec("b", 3, 4, 3, 1, 1, 8, 8, ConvStructure.CONV_ONLY)
        assert with_mask.has_relu_mask
        assert not without.has_relu_mask

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("c", 3, 4, 9, 1, 0, 4, 4)
        with pytest.raises(ValueError):
            ConvLayerSpec("c", 0, 4, 3, 1, 1, 8, 8)


class TestLinearLayerSpec:
    def test_counts_and_conv_view(self):
        layer = LinearLayerSpec("fc", 100, 10)
        assert layer.weight_count == 1000
        assert layer.training_macs == 3000
        conv_view = layer.as_conv()
        assert conv_view.in_channels == 100
        assert conv_view.out_channels == 10
        assert conv_view.forward_macs == 1000


class TestAlexNetSpecs:
    def test_imagenet_geometry(self):
        spec = alexnet_imagenet_spec()
        assert spec.num_conv_layers == 5
        conv1 = spec.conv_layers[0]
        assert (conv1.out_height, conv1.out_width) == (55, 55)
        # Total conv weights of AlexNet are ~2.3M.
        conv_weights = sum(l.weight_count for l in spec.conv_layers)
        assert 2.2e6 < conv_weights < 2.6e6

    def test_cifar_geometry(self):
        spec = alexnet_cifar_spec(10)
        assert spec.input_shape == (3, 32, 32)
        assert all(l.structure is ConvStructure.CONV_RELU for l in spec.conv_layers)

    def test_describe_mentions_every_layer(self):
        text = alexnet_cifar_spec().describe()
        for layer in alexnet_cifar_spec().conv_layers:
            assert layer.name in text


class TestResNetSpecs:
    def test_supported_depths(self):
        assert set(supported_depths()) == {18, 34, 50, 101, 152}

    def test_resnet18_imagenet_conv_count_and_weights(self):
        spec = resnet_spec(18, "ImageNet")
        # 1 stem + 16 block convs + 3 downsample convs = 20
        assert spec.num_conv_layers == 20
        conv_weights = sum(l.weight_count for l in spec.conv_layers)
        # ResNet-18 has ~11.2M conv weights.
        assert 10.5e6 < conv_weights < 12.0e6

    def test_resnet34_has_more_layers_than_resnet18(self):
        assert resnet_spec(34, "CIFAR-10").num_conv_layers > resnet_spec(18, "CIFAR-10").num_conv_layers

    def test_resnet152_uses_bottlenecks(self):
        spec = resnet_spec(152, "ImageNet")
        # 1 stem + (3+8+36+3) * 3 convs + 4 downsample convs = 155
        assert spec.num_conv_layers == 155
        conv_weights = sum(l.weight_count for l in spec.conv_layers)
        assert 55e6 < conv_weights < 62e6

    def test_imagenet_spatial_sizes_shrink_to_seven(self):
        spec = resnet_spec(18, "ImageNet")
        last = spec.conv_layers[-1]
        assert last.out_height == 7 and last.out_width == 7

    def test_cifar_spatial_sizes_shrink_to_four(self):
        spec = resnet_spec(18, "CIFAR-10")
        last = spec.conv_layers[-1]
        assert last.out_height == 4 and last.out_width == 4

    def test_all_block_convs_are_conv_bn_relu(self):
        spec = resnet_spec(18, "CIFAR-10")
        block_convs = [l for l in spec.conv_layers if "downsample" not in l.name]
        assert all(l.structure is ConvStructure.CONV_BN_RELU for l in block_convs)

    def test_downsample_convs_marked_conv_only(self):
        spec = resnet_spec(18, "CIFAR-10")
        downsamples = [l for l in spec.conv_layers if "downsample" in l.name]
        assert len(downsamples) == 3
        assert all(l.structure is ConvStructure.CONV_ONLY for l in downsamples)

    def test_unknown_depth_and_dataset_rejected(self):
        with pytest.raises(ValueError):
            resnet_spec(19, "CIFAR-10")
        with pytest.raises(ValueError):
            resnet_spec(18, "MNIST")

    def test_classifier_widths(self):
        assert resnet_spec(18, "CIFAR-100").linear_layers[0].out_features == 100
        assert resnet_spec(18, "ImageNet").linear_layers[0].out_features == 1000
        assert resnet_spec(50, "CIFAR-10").linear_layers[0].in_features == 2048


class TestModelSpecAggregates:
    def test_total_macs_consistency(self):
        spec = alexnet_cifar_spec()
        assert spec.total_training_macs == spec.conv_training_macs + sum(
            l.training_macs for l in spec.linear_layers
        )

    def test_layer_by_name(self):
        spec = alexnet_cifar_spec()
        assert spec.layer_by_name("conv3").out_channels == 384
        with pytest.raises(KeyError):
            spec.layer_by_name("missing")

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec("empty", "CIFAR-10", (3, 32, 32), tuple())


class TestZoo:
    def test_get_model_spec_known_combinations(self):
        assert get_model_spec("AlexNet", "ImageNet").dataset == "ImageNet"
        assert get_model_spec("resnet-34", "cifar-100").name == "ResNet-34"

    def test_get_model_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_model_spec("LeNet-5", "CIFAR-10")
        with pytest.raises(ValueError):
            get_model_spec("AlexNet", "MNIST")
        with pytest.raises(ValueError):
            get_model_spec("ResNet-abc", "CIFAR-10")

    def test_paper_workloads_grid(self):
        specs = paper_workloads(include_imagenet=True)
        assert len(specs) == 9
        assert len(paper_workloads(include_imagenet=False)) == 6

    def test_table2_workload_rows(self):
        rows = table2_workloads()
        assert ("ResNet-152", "CIFAR-10") in rows
        assert ("ResNet-152", "ImageNet") not in rows
        assert len(rows) == 11
