"""Tests for forgiving model/dataset name resolution in the zoo."""

from __future__ import annotations

import pytest

from repro.models.zoo import (
    get_model_spec,
    normalize_dataset_name,
    normalize_model_name,
)


class TestNormalizeModelName:
    @pytest.mark.parametrize(
        "variant",
        ["resnet-18", "resnet18", "ResNet18", "RESNET_18", "ResNet 18", " resnet-18 "],
    )
    def test_resnet_variants_canonicalise(self, variant):
        assert normalize_model_name(variant) == "ResNet-18"

    @pytest.mark.parametrize("variant", ["alexnet", "AlexNet", "ALEXNET", "alex_net"])
    def test_alexnet_variants_canonicalise(self, variant):
        assert normalize_model_name(variant) == "AlexNet"

    @pytest.mark.parametrize(
        "variant", ["vgg16", "VGG-16", "vgg_16", "VGG 16", " vgg-16 "]
    )
    def test_vgg_variants_canonicalise(self, variant):
        assert normalize_model_name(variant) == "VGG-16"

    def test_vgg11_variant_canonicalises(self):
        assert normalize_model_name("vgg11") == "VGG-11"

    @pytest.mark.parametrize(
        "variant",
        ["mobilenet", "MobileNet", "mobilenet_v1", "MobileNetV1", "mobilenet-v1"],
    )
    def test_mobilenet_variants_canonicalise(self, variant):
        assert normalize_model_name(variant) == "MobileNetV1"

    def test_unknown_names_pass_through_stripped(self):
        assert normalize_model_name(" LeNet-5 ") == "LeNet-5"
        assert normalize_model_name("resnet-abc") == "resnet-abc"
        assert normalize_model_name("vgg-abc") == "vgg-abc"


class TestNormalizeDatasetName:
    @pytest.mark.parametrize(
        "variant,expected",
        [
            ("cifar10", "CIFAR-10"),
            ("CIFAR-10", "CIFAR-10"),
            ("cifar_100", "CIFAR-100"),
            ("Cifar 100", "CIFAR-100"),
            ("imagenet", "ImageNet"),
            ("IMAGENET", "ImageNet"),
        ],
    )
    def test_variants_canonicalise(self, variant, expected):
        assert normalize_dataset_name(variant) == expected

    def test_unknown_names_pass_through_stripped(self):
        assert normalize_dataset_name(" MNIST ") == "MNIST"


class TestGetModelSpec:
    @pytest.mark.parametrize("model", ["resnet18", "ResNet18", "resnet-18"])
    @pytest.mark.parametrize("dataset", ["cifar10", "CIFAR-10"])
    def test_all_variants_resolve_to_same_spec(self, model, dataset):
        assert get_model_spec(model, dataset) == get_model_spec("ResNet-18", "CIFAR-10")

    def test_alexnet_variants_resolve(self):
        assert get_model_spec("alexnet", "imagenet") == get_model_spec(
            "AlexNet", "ImageNet"
        )

    @pytest.mark.parametrize("model", ["vgg16", "VGG-16", "vgg_16"])
    def test_vgg_variants_resolve_to_same_spec(self, model):
        assert get_model_spec(model, "cifar10") == get_model_spec("VGG-16", "CIFAR-10")

    @pytest.mark.parametrize("model", ["mobilenet", "mobilenet_v1", "MobileNetV1"])
    def test_mobilenet_variants_resolve_to_same_spec(self, model):
        assert get_model_spec(model, "cifar10") == get_model_spec(
            "MobileNetV1", "CIFAR-10"
        )

    def test_unknown_model_still_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            get_model_spec("LeNet-5", "CIFAR-10")

    def test_malformed_resnet_depth_names_the_model(self):
        with pytest.raises(ValueError, match="cannot parse ResNet depth from 'ResNet-abc'"):
            get_model_spec("ResNet-abc", "CIFAR-10")

    def test_unknown_dataset_still_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            get_model_spec("AlexNet", "MNIST")
        with pytest.raises(ValueError):
            get_model_spec("resnet18", "MNIST")
