"""Tests for the VGG and MobileNetV1 model families (specs + runnable models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.mobilenet import build_mobilenet, mobilenet_spec
from repro.models.vgg import build_vgg, supported_vgg_depths, vgg_spec
from repro.models.zoo import extended_workloads, get_model_spec, model_family
from repro.models.spec import ConvStructure
from repro.pruning.sites import PruneSide, find_pruning_sites


class TestVGGSpec:
    def test_vgg16_imagenet_matches_reference_parameters(self):
        spec = vgg_spec(16, "ImageNet")
        # VGG-16 is famously ~138M parameters.
        assert spec.total_weights == pytest.approx(138.3e6, rel=0.01)
        assert spec.num_conv_layers == 13
        # Five max-pool stages: 224 -> 7 at the last convolution.
        assert spec.conv_layers[-1].out_height == 14  # pre-pool feature map
        assert spec.linear_layers[0].in_features == 512 * 7 * 7

    def test_vgg11_has_eight_convs(self):
        spec = vgg_spec(11, "CIFAR-10")
        assert spec.num_conv_layers == 8
        assert spec.name == "VGG-11"

    def test_all_convs_are_conv_relu_3x3(self):
        spec = vgg_spec(16, "CIFAR-100")
        assert all(l.structure is ConvStructure.CONV_RELU for l in spec.conv_layers)
        assert all(l.kernel == 3 and l.stride == 1 and l.padding == 1 for l in spec.conv_layers)
        assert spec.dataset == "CIFAR-100"

    def test_rejects_unknown_depth_and_dataset(self):
        with pytest.raises(ValueError, match="unsupported VGG depth"):
            vgg_spec(13)
        with pytest.raises(ValueError, match="unknown dataset"):
            vgg_spec(16, "MNIST")
        assert supported_vgg_depths() == (11, 16)


class TestMobileNetSpec:
    def test_imagenet_matches_reference_parameters(self):
        spec = mobilenet_spec("ImageNet")
        # MobileNetV1 is ~4.2M parameters and ~0.57 GMAC per forward pass.
        assert spec.total_weights == pytest.approx(4.2e6, rel=0.01)
        forward_macs = sum(l.forward_macs for l in spec.conv_layers)
        assert forward_macs == pytest.approx(0.57e9, rel=0.02)
        # Stem + 13 depthwise/pointwise pairs.
        assert spec.num_conv_layers == 1 + 13 * 2

    def test_depthwise_layers_are_grouped(self):
        spec = mobilenet_spec("CIFAR-10")
        depthwise = [l for l in spec.conv_layers if l.name.endswith(".dw")]
        pointwise = [l for l in spec.conv_layers if l.name.endswith(".pw")]
        assert len(depthwise) == len(pointwise) == 13
        assert all(l.is_depthwise for l in depthwise)
        assert all(l.groups == 1 and l.kernel == 1 for l in pointwise)
        assert all(l.structure is ConvStructure.CONV_BN_RELU for l in spec.conv_layers)

    def test_width_multiplier_scales_weights(self):
        full = mobilenet_spec("ImageNet")
        half = mobilenet_spec("ImageNet", width_multiplier=0.5)
        assert half.name == "MobileNetV1-0.5x"
        assert half.total_weights < full.total_weights / 3
        with pytest.raises(ValueError):
            mobilenet_spec("CIFAR-10", width_multiplier=0.0)

    def test_cifar_stem_keeps_stride_one(self):
        cifar = mobilenet_spec("CIFAR-10")
        assert cifar.conv_layers[0].stride == 1
        assert mobilenet_spec("ImageNet").conv_layers[0].stride == 2
        # Four stride-2 depthwise stages: 32 -> 2 at the classifier.
        assert cifar.conv_layers[-1].out_height == 2


class TestRunnableModels:
    def test_reduced_vgg_trains_one_step(self, rng):
        model = build_vgg(num_classes=3, image_size=8, width_scale=0.1, rng=rng)
        x = rng.normal(size=(4, 3, 8, 8))
        out = model.forward(x)
        assert out.shape == (4, 3)
        grad = model.backward(np.ones_like(out) / out.size)
        assert grad.shape == x.shape

    def test_reduced_mobilenet_trains_one_step(self, rng):
        model = build_mobilenet(num_classes=3, image_size=8, width_multiplier=0.2, rng=rng)
        x = rng.normal(size=(4, 3, 8, 8))
        out = model.forward(x)
        assert out.shape == (4, 3)
        grad = model.backward(np.ones_like(out) / out.size)
        assert grad.shape == x.shape

    def test_mobilenet_pruning_sites_target_output_grad(self, rng):
        model = build_mobilenet(num_classes=3, image_size=8, width_multiplier=0.2, rng=rng)
        sites = find_pruning_sites(model)
        # Stem conv + (dw, pw) per block, all Conv-BN-ReLU -> prune dO.
        assert len(sites) == 1 + 2 * 3
        assert all(site.side is PruneSide.OUTPUT_GRAD for site in sites)
        names = [site.name for site in sites]
        assert any(name.endswith(".dw") for name in names)
        assert any(name.endswith(".pw") for name in names)

    def test_vgg_pruning_sites_target_input_grad(self, rng):
        model = build_vgg(num_classes=3, image_size=8, width_scale=0.1, rng=rng)
        sites = find_pruning_sites(model)
        assert len(sites) == 5  # convs_per_stage = (1, 2, 2)
        assert all(site.side is PruneSide.INPUT_GRAD for site in sites)

    def test_build_validation(self, rng):
        with pytest.raises(ValueError):
            build_vgg(image_size=12, rng=rng)  # not divisible by 2^3
        with pytest.raises(ValueError):
            build_mobilenet(image_size=2, rng=rng)  # too small for stride
        with pytest.raises(ValueError):
            build_mobilenet(blocks=(), rng=rng)


class TestZooIntegration:
    def test_extended_workloads_cover_new_families(self):
        workloads = extended_workloads()
        names = {f"{spec.name}/{spec.dataset}" for spec in workloads}
        assert "VGG-16/CIFAR-10" in names
        assert "MobileNetV1/ImageNet" in names
        assert len(workloads) == 13
        assert len(extended_workloads(include_imagenet=False)) == 8

    def test_get_model_spec_dispatch(self):
        assert get_model_spec("vgg11", "cifar10").name == "VGG-11"
        assert get_model_spec("mobilenet", "imagenet").dataset == "ImageNet"
        with pytest.raises(ValueError, match="cannot parse VGG depth"):
            get_model_spec("VGG-abc", "CIFAR-10")

    def test_model_family(self):
        assert model_family("vgg16") == "VGG"
        assert model_family("mobilenet_v1") == "MobileNet"
        assert model_family("resnet152") == "ResNet"
        assert model_family("alexnet") == "AlexNet"
        with pytest.raises(ValueError, match="family"):
            model_family("LeNet-5")
