"""End-to-end integration tests: the full algorithm -> dataflow -> architecture pipeline."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.data import make_cifar_like
from repro.models import build_resnet, get_model_spec
from repro.nn import SGD, Trainer
from repro.pruning import PruningConfig, PruningController
from repro.sim import compare_workload, map_densities_to_spec, profile_training_densities
from repro.utils.rng import new_rng


class TestPackage:
    def test_version_and_subpackages(self):
        assert repro.__version__
        for name in ("nn", "data", "models", "pruning", "sparsity", "dataflow", "arch", "baselines", "sim"):
            assert hasattr(repro, name)


class TestFullPipeline:
    """Train a reduced model with pruning, measure densities, map them onto the
    paper's full-size geometry and simulate both architectures — the complete
    Fig. 8 pipeline in one test."""

    @pytest.fixture(scope="class")
    def pipeline_result(self):
        dataset = make_cifar_like(
            num_samples=192, num_classes=4, image_size=8, rng=np.random.default_rng(0)
        )
        model = build_resnet(
            num_classes=4, image_size=8, blocks_per_stage=(1,), base_width=8, rng=new_rng(0)
        )
        measured = profile_training_densities(
            model,
            dataset,
            pruning=PruningConfig(target_sparsity=0.9, fifo_depth=2),
            epochs=2,
            batch_size=32,
            lr=0.1,
        )
        spec = get_model_spec("ResNet-18", "CIFAR-10")
        densities = map_densities_to_spec(measured, spec)
        return measured, spec, compare_workload(spec, densities)

    def test_measured_densities_reflect_pruning(self, pipeline_result):
        measured, _, _ = pipeline_result
        grad_densities = [
            measured.densities[name].grad_output_density for name in measured.layer_names
        ]
        assert float(np.mean(grad_densities)) < 0.7

    def test_simulated_speedup_and_efficiency(self, pipeline_result):
        _, _, workload = pipeline_result
        assert workload.speedup > 1.2
        assert workload.energy_efficiency > 1.1

    def test_energy_breakdown_shape(self, pipeline_result):
        _, _, workload = pipeline_result
        baseline = workload.comparison.baseline
        assert baseline.total_energy.fraction("sram") > 0.4
        assert (
            workload.comparison.combinational_energy_reduction
            > workload.comparison.sram_energy_reduction
        )

    def test_per_layer_cycles_cover_whole_network(self, pipeline_result):
        _, spec, workload = pipeline_result
        layer_cycles = workload.comparison.sparsetrain.cycles_by_layer()
        assert set(layer_cycles) == {layer.name for layer in spec.conv_layers}
        assert all(value > 0 for value in layer_cycles.values())


class TestPruningDoesNotHurtLearning:
    """Direct head-to-head: same model/seed trained with and without pruning."""

    def _train(self, with_pruning: bool) -> float:
        dataset = make_cifar_like(
            num_samples=256, num_classes=4, image_size=8, rng=np.random.default_rng(1)
        )
        train, test = dataset.split(0.8, np.random.default_rng(2))
        model = build_resnet(
            num_classes=4, image_size=8, blocks_per_stage=(1,), base_width=8, rng=new_rng(5)
        )
        callbacks = []
        if with_pruning:
            callbacks.append(
                PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=2))
            )
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.1, momentum=0.9), callbacks=callbacks
        )
        history = trainer.fit(
            train.images, train.labels, epochs=4, batch_size=32,
            test_images=test.images, test_labels=test.labels,
            shuffle_rng=np.random.default_rng(3),
        )
        return float(history.best_test_accuracy)

    def test_accuracy_with_pruning_close_to_baseline(self):
        baseline_accuracy = self._train(with_pruning=False)
        pruned_accuracy = self._train(with_pruning=True)
        assert baseline_accuracy > 0.5
        assert pruned_accuracy >= baseline_accuracy - 0.2
