"""Tests for repro.utils: RNG helpers, validation, logging."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils.logging import (
    LOG_FORMAT_ENV,
    ProgressPrinter,
    get_logger,
    json_logs_enabled,
    log_record,
    service_log,
)
from repro.utils.rng import derive_rng, new_rng, spawn_rngs, stable_hash_seed
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_shape,
)


class TestRng:
    def test_new_rng_is_deterministic_for_same_seed(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_new_rng_differs_for_different_seeds(self):
        assert not np.allclose(new_rng(1).random(5), new_rng(2).random(5))

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = [r.random(8) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_spawn_rngs_reproducible(self):
        a = [r.random(3) for r in spawn_rngs(3, 2)]
        b = [r.random(3) for r in spawn_rngs(3, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_rng_passthrough(self):
        rng = new_rng(0)
        assert derive_rng(rng) is rng

    def test_derive_rng_creates_new(self):
        assert isinstance(derive_rng(None, 5), np.random.Generator)

    def test_stable_hash_seed_deterministic(self):
        assert stable_hash_seed("a", 1, 2.5) == stable_hash_seed("a", 1, 2.5)

    def test_stable_hash_seed_differs(self):
        assert stable_hash_seed("a") != stable_hash_seed("b")

    def test_stable_hash_seed_fits_32_bits(self):
        assert 0 <= stable_hash_seed("model", "dataset", 99) < 2**32


class TestValidation:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_check_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("value", [0, -1])
    def test_check_positive_int_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "x")

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_check_positive_int_rejects_wrong_type(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "x")

    def test_check_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_check_non_negative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-2, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_check_positive_float_rejects_zero_and_nan(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")
        with pytest.raises(ValueError):
            check_positive_float(float("nan"), "x")

    def test_check_shape_accepts_wildcards(self):
        array = np.zeros((2, 3, 4))
        assert check_shape(array, (2, None, 4), "x") is array

    def test_check_shape_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((2, 3)), (2, 3, 1), "x")

    def test_check_shape_rejects_wrong_axis(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((2, 3)), (2, 4), "x")


class TestLogging:
    def test_get_logger_namespacing(self):
        logger = get_logger("trainer")
        assert isinstance(logger, logging.Logger)
        assert logger.name == "repro.trainer"

    def test_progress_printer_respects_interval(self, capsys):
        printer = ProgressPrinter(total=10, every=1000.0)
        printer.update(1, "working")
        # Interval not elapsed and step != total: nothing printed.
        assert capsys.readouterr().err == ""
        printer.update(10, "done")
        assert "10/10" in capsys.readouterr().err

    def test_progress_printer_without_total(self, capsys):
        printer = ProgressPrinter(every=0.0)
        printer.update(3, "msg")
        err = capsys.readouterr().err
        assert "step 3" in err and "msg" in err


class TestServiceLog:
    def test_text_mode_prints_the_bare_message(self, capsys, monkeypatch):
        monkeypatch.delenv(LOG_FORMAT_ENV, raising=False)
        assert not json_logs_enabled()
        service_log("worker started")
        assert capsys.readouterr().out == "worker started\n"

    def test_json_mode_emits_one_json_object_per_line(self, capsys, monkeypatch):
        import json as _json

        monkeypatch.setenv(LOG_FORMAT_ENV, "json")
        assert json_logs_enabled()
        service_log("claimed job", level="info", job="abc123")
        line = capsys.readouterr().out.strip()
        record = _json.loads(line)
        assert record["message"] == "claimed job"
        assert record["level"] == "info"
        assert record["job"] == "abc123"
        assert record["ts"] > 0

    def test_json_lines_carry_the_ambient_trace_context(self, capsys, monkeypatch):
        import json as _json

        from repro.obs import trace_context

        monkeypatch.setenv(LOG_FORMAT_ENV, "JSON")  # case-insensitive
        with trace_context(trace_id="t-1", job_id="j-1", worker_id="w-1"):
            service_log("executing")
        record = _json.loads(capsys.readouterr().out)
        assert record["trace_id"] == "t-1"
        assert record["job_id"] == "j-1"
        assert record["worker_id"] == "w-1"

    def test_log_record_omits_unbound_fields(self, monkeypatch):
        record = log_record("idle", extra=None, depth=3)
        assert "trace_id" not in record  # no ambient context, no null noise
        assert "extra" not in record  # explicit None fields dropped too
        assert record["depth"] == 3

    def test_explicit_fields_win_over_ambient(self, monkeypatch):
        from repro.obs import trace_context

        with trace_context(worker_id="ambient"):
            record = log_record("msg", worker_id="explicit")
        assert record["worker_id"] == "explicit"
