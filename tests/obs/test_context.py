"""Ambient trace context: nesting, inheritance, late binding, thread scope."""

from __future__ import annotations

import threading

import pytest

from repro.obs.context import (
    bind_trace,
    current_trace,
    new_trace_id,
    set_trace_defaults,
    trace_context,
)


@pytest.fixture(autouse=True)
def _clean_defaults():
    """Process-wide defaults must not bleed between tests (either way)."""
    set_trace_defaults(trace_id=None, job_id=None, worker_id=None)
    yield
    set_trace_defaults(trace_id=None, job_id=None, worker_id=None)


class TestTraceIds:
    def test_new_trace_id_is_32_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)  # raises if not hex

    def test_new_trace_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100


class TestContextStack:
    def test_empty_context_has_no_fields(self):
        ctx = current_trace()
        assert ctx.trace_id is None
        assert ctx.job_id is None
        assert ctx.worker_id is None
        assert ctx.to_dict() == {}

    def test_context_binds_and_unbinds(self):
        with trace_context(trace_id="t1", job_id="j1"):
            assert current_trace().trace_id == "t1"
            assert current_trace().job_id == "j1"
        assert current_trace().trace_id is None

    def test_nested_context_inherits_unset_fields(self):
        with trace_context(trace_id="t1", worker_id="w1"):
            with trace_context(job_id="j1"):
                ctx = current_trace()
                assert ctx.trace_id == "t1"  # inherited
                assert ctx.job_id == "j1"  # own
                assert ctx.worker_id == "w1"  # inherited
            assert current_trace().job_id is None

    def test_inner_context_shadows_outer(self):
        with trace_context(trace_id="outer"):
            with trace_context(trace_id="inner"):
                assert current_trace().trace_id == "inner"
            assert current_trace().trace_id == "outer"

    def test_to_dict_only_holds_bound_fields(self):
        with trace_context(trace_id="t1"):
            assert current_trace().to_dict() == {"trace_id": "t1"}

    def test_exception_still_pops_the_frame(self):
        try:
            with trace_context(trace_id="doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace().trace_id is None


class TestBindTrace:
    def test_bind_rewrites_the_innermost_frame(self):
        """The dedup-attach case: the authoritative id arrives mid-span."""
        with trace_context(trace_id="proposed"):
            bind_trace(trace_id="authoritative", job_id="j1")
            ctx = current_trace()
            assert ctx.trace_id == "authoritative"
            assert ctx.job_id == "j1"
        assert current_trace().trace_id is None

    def test_bind_does_not_leak_into_outer_frames(self):
        with trace_context(trace_id="outer"):
            with trace_context():
                bind_trace(trace_id="inner-only")
            assert current_trace().trace_id == "outer"


class TestDefaults:
    def test_defaults_apply_process_wide(self):
        set_trace_defaults(worker_id="w-proc")
        try:
            assert current_trace().worker_id == "w-proc"
            with trace_context(trace_id="t1"):
                ctx = current_trace()
                assert ctx.worker_id == "w-proc"
                assert ctx.trace_id == "t1"
        finally:
            set_trace_defaults(worker_id=None)
        assert current_trace().worker_id is None

    def test_frames_shadow_defaults(self):
        set_trace_defaults(worker_id="w-proc")
        try:
            with trace_context(worker_id="w-frame"):
                assert current_trace().worker_id == "w-frame"
        finally:
            set_trace_defaults(worker_id=None)


class TestThreadIsolation:
    def test_frames_are_thread_local(self):
        seen = {}

        def worker():
            seen["in_thread"] = current_trace().trace_id
            with trace_context(trace_id="thread-own"):
                seen["own"] = current_trace().trace_id

        with trace_context(trace_id="main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["in_thread"] is None  # main's frame did not leak
        assert seen["own"] == "thread-own"

    def test_defaults_are_visible_across_threads(self):
        set_trace_defaults(worker_id="w-shared")
        seen = {}
        try:
            thread = threading.Thread(
                target=lambda: seen.update(wid=current_trace().worker_id)
            )
            thread.start()
            thread.join()
        finally:
            set_trace_defaults(worker_id=None)
        assert seen["wid"] == "w-shared"
