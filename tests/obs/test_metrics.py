"""Counters, gauges, the log-bucket histogram, and the registry exporters."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    metrics,
)

# The documented worst-case relative quantile error of the bucket layout.
REL_ERROR_BOUND = math.sqrt(GROWTH) - 1.0


class TestBucketLayout:
    def test_eight_buckets_per_decade(self):
        assert BUCKETS_PER_DECADE == 8
        assert GROWTH == pytest.approx(10.0 ** 0.125)

    @pytest.mark.parametrize(
        "value", [1e-6, 3.7e-4, 0.01, 0.123, 1.0 - 1e-9, 1.5, 42.0, 9.9e3]
    )
    def test_value_lands_inside_its_bucket(self, value):
        low, high = bucket_bounds(bucket_index(value))
        # (low, high] up to float fuzz on the log at exact boundaries.
        assert low < value * (1 + 1e-9)
        assert value <= high * (1 + 1e-9)

    def test_buckets_tile_without_gaps(self):
        for index in range(-20, 20):
            _, high = bucket_bounds(index)
            next_low, _ = bucket_bounds(index + 1)
            assert high == pytest.approx(next_low)

    def test_underflow_bucket(self):
        assert bucket_index(0.0) == bucket_index(-1.0) == bucket_index(1e-15)
        low, high = bucket_bounds(bucket_index(0.0))
        assert low == 0.0 and high > 0.0

    def test_decade_is_exactly_eight_buckets(self):
        assert bucket_index(0.9999e1) - bucket_index(1.001e0) == (
            BUCKETS_PER_DECADE - 1
        )


class TestCounterGauge:
    def test_counter_counts_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.5)
        assert gauge.value == pytest.approx(2.5)


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        snap = histogram.snapshot()
        assert snap.count == 0 and snap.p50 is None

    def test_single_value_is_reported_exactly(self):
        """min == max clamping makes one-value quantiles exact, not bucketed."""
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(0.0123)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.0123)

    def test_quantile_error_within_bucket_bound(self):
        """Estimates stay within sqrt(growth)-1 of the true quantile."""
        # Deterministic spread over ~3 decades (no RNG needed).
        values = [0.001 * (1.017 ** i) for i in range(500)]
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        for q in (0.10, 0.50, 0.90, 0.95, 0.99):
            true = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            estimate = histogram.quantile(q)
            assert abs(estimate - true) / true <= REL_ERROR_BOUND + 1e-9

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram()
        for value in (0.2, 0.4, 0.6):
            histogram.observe(value)
        assert 0.2 <= histogram.quantile(0.0) <= 0.6
        assert 0.2 <= histogram.quantile(1.0) <= 0.6

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_count_sum_min_max_are_exact(self):
        histogram = Histogram()
        for value in (0.5, 1.5, 2.5):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap.count == 3
        assert snap.sum == pytest.approx(4.5)
        assert snap.min == 0.5 and snap.max == 2.5


def _filled(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


def _state(histogram):
    return (
        dict(histogram._buckets),
        histogram._count,
        pytest.approx(histogram._sum),
        histogram._min,
        histogram._max,
    )


class TestHistogramMerge:
    def test_merge_is_exact_bucket_addition(self):
        a = _filled([0.1, 0.2, 0.3])
        b = _filled([1.0, 2.0])
        merged = a.merge(b)
        direct = _filled([0.1, 0.2, 0.3, 1.0, 2.0])
        assert _state(merged) == _state(direct)

    def test_merge_is_associative(self):
        a = _filled([0.01 * (1.1 ** i) for i in range(40)])
        b = _filled([0.5, 5.0, 50.0])
        c = _filled([3e-3, 7e2])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _state(left) == _state(right)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == pytest.approx(right.quantile(q))

    def test_merge_is_commutative_and_nondestructive(self):
        a = _filled([0.1, 0.2])
        b = _filled([10.0])
        assert _state(a.merge(b)) == _state(b.merge(a))
        assert a.count == 2 and b.count == 1  # inputs untouched


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs.done", queue="main")
        first.inc()
        assert registry.counter("jobs.done", queue="main") is first
        assert registry.counter("jobs.done", queue="other") is not first

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("pool", kind="x", size="2")
        b = registry.gauge("pool", size="2", kind="x")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="not a Gauge"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="not a Histogram"):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs", experiment="fig8").inc(3)
        registry.gauge("workers").set(2)
        registry.histogram("latency").observe(0.25)
        snap = registry.snapshot()
        assert snap["runs"] == [
            {"labels": {"experiment": "fig8"}, "value": 3, "type": "counter"}
        ]
        assert snap["workers"][0]["type"] == "gauge"
        hist = snap["latency"][0]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1 and hist["p50"] == pytest.approx(0.25)

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_global_accessor(self):
        assert metrics() is metrics()


class TestPrometheusRendering:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter("runner.tasks.completed", pool="sim").inc(7)
        text = registry.render_prometheus()
        assert "# TYPE repro_runner_tasks_completed_total counter" in text
        assert 'repro_runner_tasks_completed_total{pool="sim"} 7' in text

    def test_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.gauge("serve.workers_alive").set(2)
        text = registry.render_prometheus()
        assert "# TYPE repro_serve_workers_alive gauge" in text
        assert "repro_serve_workers_alive 2" in text

    def test_histogram_rendered_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stage.seconds", stage="train")
        for value in (0.1, 0.2, 0.4):
            hist.observe(value)
        text = registry.render_prometheus()
        assert "# TYPE repro_stage_seconds summary" in text
        assert 'repro_stage_seconds{stage="train",quantile="0.5"}' in text
        assert 'repro_stage_seconds_count{stage="train"} 3' in text
        assert 'repro_stage_seconds_sum{stage="train"} 0.7' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_dots_and_dashes_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit-rate").inc()
        text = registry.render_prometheus()
        assert "repro_cache_hit_rate_total" in text
