"""End-to-end telemetry: pipeline stages, the runner, and caches.

The instrumentation records into the process-global registry/ring, which
accumulates across a pytest run — every assertion here is therefore a
*delta* around the exercised call, never an absolute value.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentRequest, RunOptions, run_experiment
from repro.api.runner import Runner
from repro.eval.common import ExperimentScale
from repro.explore.cache import CacheInfo, ResultCache
from repro.obs import TRACE, metrics


def _counter(name, **labels):
    return metrics().counter(name, **labels).value


def _hist_count(name, **labels):
    return metrics().histogram(name, **labels).count


SMOKE = ExperimentScale.preset("smoke")


class TestPipelineInstrumentation:
    def test_stage_histograms_and_spans(self):
        request = ExperimentRequest(
            experiment="ablate-fifo",
            scale=SMOKE,
            params={"fifo_depths": [1, 5], "num_batches": 8,
                    "batch_elements": 512},
        )
        runs_before = _counter("pipeline.runs", experiment="ablate-fifo")
        stages_before = {
            stage: _hist_count("pipeline.stage.seconds", stage=stage)
            for stage in ("prune", "report")
        }
        spans_before = TRACE.recorded

        result = run_experiment(request, RunOptions(use_cache=False))

        assert _counter("pipeline.runs", experiment="ablate-fifo") == runs_before + 1
        for stage in ("prune", "report"):
            assert (
                _hist_count("pipeline.stage.seconds", stage=stage)
                == stages_before[stage] + 1
            )
        # One span per stage plus the enclosing pipeline span.
        assert TRACE.recorded == spans_before + len(result.timings) + 1
        new = TRACE.spans()[-(len(result.timings) + 1):]
        names = {span.name for span in new}
        assert f"pipeline.{request.experiment}" in names
        for stage, _ in result.timings:
            assert f"stage.{stage}" in names
        # Stage spans parent to the pipeline span.
        pipeline_span = next(
            s for s in new if s.name == f"pipeline.{request.experiment}"
        )
        for span in new:
            if span.name.startswith("stage."):
                assert span.parent_id == pipeline_span.span_id
        assert pipeline_span.attrs["experiment"] == "ablate-fifo"


class TestRunnerInstrumentation:
    def test_serial_batch_counts_submitted_and_completed(self):
        runner = Runner(parallel=False)
        submitted = _counter("runner.tasks.submitted")
        completed = _counter("runner.tasks.completed")
        wait_count = _hist_count("runner.task.queue_wait_seconds")
        exec_count = _hist_count("runner.task.exec_seconds")

        assert runner.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

        assert _counter("runner.tasks.submitted") == submitted + 3
        assert _counter("runner.tasks.completed") == completed + 3
        assert _hist_count("runner.task.queue_wait_seconds") == wait_count + 3
        assert _hist_count("runner.task.exec_seconds") == exec_count + 3

    def test_failed_task_counts_failure_and_cancellations(self):
        runner = Runner(parallel=False)
        failed = _counter("runner.tasks.failed")
        cancelled = _counter("runner.tasks.cancelled")

        def explode(x):
            if x == 2:
                raise ValueError("x == 2")
            return x

        with pytest.raises(ValueError):
            runner.map(explode, [1, 2, 3])

        assert _counter("runner.tasks.failed") == failed + 1
        # Item 3 never ran: it was cancelled by item 2's failure.
        assert _counter("runner.tasks.cancelled") == cancelled + 1


class TestResultCacheCounters:
    def test_cache_info_counts_local_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "stage.jsonl")
        assert cache.cache_info() == CacheInfo(hits=0, misses=0, corrupt=0, entries=0)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.get("other") is None
        info = cache.cache_info()
        assert info.hits == 1 and info.misses == 2
        assert info.entries == 1 and info.corrupt == 0

    def test_global_counters_track_by_cache_name(self, tmp_path):
        hits = _counter("cache.hits", cache="stage")
        misses = _counter("cache.misses", cache="stage")
        cache = ResultCache(tmp_path / "stage.jsonl")
        cache.get("missing")
        cache.put("k", {"v": 1})
        cache.get("k")
        assert _counter("cache.hits", cache="stage") == hits + 1
        assert _counter("cache.misses", cache="stage") == misses + 1

    def test_corrupt_lines_counted_on_load(self, tmp_path):
        path = tmp_path / "stage.jsonl"
        ResultCache(path).put("good", {"v": 1})
        with path.open("a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
        corrupt = _counter("cache.corrupt_lines", cache="stage")
        reloaded = ResultCache(path)
        assert reloaded.get("good") == {"v": 1}
        assert reloaded.cache_info().corrupt == 1
        assert _counter("cache.corrupt_lines", cache="stage") == corrupt + 1


class TestColdWarmFig8:
    def test_density_cache_hit_rate_nonzero_on_second_run(self, tmp_path):
        """Cold run misses the density cache; the warm re-run hits it."""
        request = ExperimentRequest(
            experiment="fig8",
            scale=SMOKE,
            workloads=(("AlexNet", "CIFAR-10"),),
        )
        options = RunOptions(cache_dir=tmp_path, parallel=False)

        hits0 = _counter("cache.hits", cache="densities")
        misses0 = _counter("cache.misses", cache="densities")
        cold = run_experiment(request, options)
        hits1 = _counter("cache.hits", cache="densities")
        misses1 = _counter("cache.misses", cache="densities")
        assert misses1 > misses0  # cold: every density lookup missed
        assert hits1 == hits0

        warm = run_experiment(request, options)
        hits2 = _counter("cache.hits", cache="densities")
        misses2 = _counter("cache.misses", cache="densities")
        assert hits2 > hits1  # warm: nonzero hit rate
        assert misses2 == misses1
        assert warm.summary == cold.summary
