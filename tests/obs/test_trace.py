"""Span recording, thread-local parenting, the ring bound, and exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import Span, TraceBuffer, current_span_id, trace_span


@pytest.fixture
def buffer():
    """An instance-local ring so tests never touch the global TRACE."""
    return TraceBuffer()


def _by_name(buffer):
    return {span.name: span for span in buffer.spans()}


class TestNesting:
    def test_nested_spans_parent_naturally(self, buffer):
        with trace_span("outer", buffer=buffer):
            with trace_span("inner", buffer=buffer):
                pass
        spans = _by_name(buffer)
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_inner_spans_recorded_first(self, buffer):
        """Spans complete inside-out, so the ring holds children first."""
        with trace_span("a", buffer=buffer):
            with trace_span("b", buffer=buffer):
                pass
        assert [span.name for span in buffer.spans()] == ["b", "a"]

    def test_siblings_share_a_parent(self, buffer):
        with trace_span("parent", buffer=buffer):
            with trace_span("first", buffer=buffer):
                pass
            with trace_span("second", buffer=buffer):
                pass
        spans = _by_name(buffer)
        assert spans["first"].parent_id == spans["parent"].span_id
        assert spans["second"].parent_id == spans["parent"].span_id

    def test_current_span_id_tracks_the_stack(self, buffer):
        assert current_span_id() is None
        with trace_span("outer", buffer=buffer):
            outer_id = current_span_id()
            assert outer_id is not None
            with trace_span("inner", buffer=buffer):
                assert current_span_id() not in (None, outer_id)
            assert current_span_id() == outer_id
        assert current_span_id() is None

    def test_attrs_dict_is_mutable_mid_span(self, buffer):
        with trace_span("work", buffer=buffer, stage="train") as span:
            span["instructions"] = 128
        recorded = buffer.spans()[0]
        assert recorded.attrs == {"stage": "train", "instructions": 128}

    def test_exception_records_error_and_pops_stack(self, buffer):
        with pytest.raises(RuntimeError, match="boom"):
            with trace_span("explodes", buffer=buffer):
                raise RuntimeError("boom")
        span = buffer.spans()[0]
        assert span.attrs["error"] == "RuntimeError: boom"
        assert current_span_id() is None  # stack unwound despite the raise


class TestThreadParenting:
    def test_spans_in_worker_threads_are_independent_roots(self, buffer):
        """A worker thread must not inherit the submitting thread's span."""

        def worker():
            with trace_span("worker-outer", buffer=buffer):
                with trace_span("worker-inner", buffer=buffer):
                    pass

        with trace_span("main", buffer=buffer):
            threads = [
                threading.Thread(target=worker, name=f"obs-w{i}") for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        spans = buffer.spans()
        roots = [s for s in spans if s.name == "worker-outer"]
        inners = [s for s in spans if s.name == "worker-inner"]
        assert len(roots) == len(inners) == 3
        # Every worker root is parentless even though "main" was open.
        assert all(root.parent_id is None for root in roots)
        # Each inner parents to the root recorded *on its own thread*.
        root_by_thread = {root.thread: root.span_id for root in roots}
        for inner in inners:
            assert inner.parent_id == root_by_thread[inner.thread]
        assert _by_name(buffer)["main"].parent_id is None

    def test_span_records_thread_name(self, buffer):
        def worker():
            with trace_span("named", buffer=buffer):
                pass

        thread = threading.Thread(target=worker, name="scheduler-0")
        thread.start()
        thread.join()
        assert buffer.spans()[0].thread == "scheduler-0"


class TestRingBound:
    def test_ring_keeps_only_the_newest_spans(self):
        small = TraceBuffer(capacity=4)
        for i in range(10):
            with trace_span(f"s{i}", buffer=small):
                pass
        assert len(small) == 4
        assert small.recorded == 10
        assert [span.name for span in small.spans()] == ["s6", "s7", "s8", "s9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_clear_empties_retained_but_not_recorded(self, buffer):
        with trace_span("x", buffer=buffer):
            pass
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.recorded == 1


class TestExporters:
    def _populate(self, buffer):
        with trace_span("pipeline.fig8", buffer=buffer, experiment="fig8"):
            with trace_span("stage.train", buffer=buffer, stage="train"):
                pass

    def test_jsonl_round_trips(self, buffer, tmp_path):
        self._populate(buffer)
        path = tmp_path / "spans.jsonl"
        written = buffer.write_jsonl(path)
        assert written == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["stage.train", "pipeline.fig8"]
        assert lines[0]["parent_id"] == lines[1]["span_id"]
        assert lines[0]["attrs"] == {"stage": "train"}

    def test_chrome_trace_structure(self, buffer):
        self._populate(buffer)
        document = buffer.to_chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"pipeline.fig8", "stage.train"}
        # One process_name row per contributing pid, then thread_name rows.
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
        threads = [e for e in metadata if e["name"] == "thread_name"]
        assert threads and all(e["args"]["name"] for e in threads)
        for event in complete:
            assert event["dur"] >= 0.0
            assert event["ts"] > 0.0  # microseconds since the epoch
            assert "span_id" in event["args"]
        child = next(e for e in complete if e["name"] == "stage.train")
        parent = next(e for e in complete if e["name"] == "pipeline.fig8")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert child["args"]["stage"] == "train"

    def test_write_chrome_trace_is_valid_json(self, buffer, tmp_path):
        self._populate(buffer)
        path = tmp_path / "trace.json"
        assert buffer.write_chrome_trace(path) == 2
        document = json.loads(path.read_text())
        assert "traceEvents" in document

    def test_span_to_dict_is_json_native(self):
        span = Span(
            span_id=1,
            parent_id=None,
            name="x",
            start=100.0,
            duration=0.5,
            thread="MainThread",
            attrs={"k": "v"},
        )
        assert json.loads(json.dumps(span.to_dict()))["name"] == "x"
