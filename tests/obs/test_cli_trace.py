"""``repro trace``: run an experiment, dump a Perfetto-loadable trace."""

from __future__ import annotations

import json

from repro.cli import main


class TestTraceCommand:
    def test_trace_writes_one_span_per_stage(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "ablate-fifo", "--smoke", "--out", str(out),
                "--cache-dir", str(tmp_path / "cache"),
                "--set", "fifo_depths=[1,5]", "--set", "num_batches=8",
                "--set", "batch_elements=512",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "span(s)" in captured
        assert str(out) in captured

        document = json.loads(out.read_text())
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        names = {event["name"] for event in complete}
        # The buffer is cleared before the run, so the export holds exactly
        # this run: one span per stage plus the pipeline envelope.
        assert names == {"stage.prune", "stage.report", "pipeline.ablate-fifo"}
        pipeline = next(
            e for e in complete if e["name"] == "pipeline.ablate-fifo"
        )
        for event in complete:
            if event["name"].startswith("stage."):
                assert event["args"]["parent_id"] == pipeline["args"]["span_id"]
        assert document["displayTimeUnit"] == "ms"

    def test_unknown_experiment_exits_two(self, capsys):
        code = main(["trace", "nope", "--out", "/dev/null"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
