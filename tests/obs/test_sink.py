"""The span store: spools, rotation, merge, metrics rings, telemetry agent."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.context import trace_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import (
    ProcessTelemetry,
    SnapshotRing,
    SpanSpool,
    merge_trace,
    obs_dir_for,
    prune_obs_dir,
    read_metrics_history,
    read_spans,
)
from repro.obs.trace import TraceBuffer, trace_span


class TestObsDir:
    def test_obs_dir_sits_beside_the_database(self, tmp_path):
        assert obs_dir_for(tmp_path / "serve.db") == tmp_path / "serve.db.obs"


class TestSpanSpool:
    def test_spans_spool_as_stamped_jsonl(self, tmp_path):
        buffer = TraceBuffer()
        spool = SpanSpool(tmp_path, worker_id="w1")
        buffer.add_sink(spool.record)
        with trace_context(trace_id="t-abc", job_id="j-1"):
            with trace_span("work", buffer=buffer, stage="train"):
                pass
        spool.close()
        (line,) = spool.path.read_text().splitlines()
        entry = json.loads(line)
        assert entry["name"] == "work"
        assert entry["trace_id"] == "t-abc"
        assert entry["job_id"] == "j-1"
        assert entry["worker_id"] == "w1"
        assert entry["pid"] == os.getpid()

    def test_spool_backfills_worker_id_only_when_missing(self, tmp_path):
        spool = SpanSpool(tmp_path, worker_id="spool-id")
        spool.record({"name": "a", "span_id": 1, "start": 1.0, "duration": 0.0})
        spool.record(
            {"name": "b", "span_id": 2, "start": 2.0, "duration": 0.0,
             "worker_id": "span-own"}
        )
        spool.close()
        entries = [json.loads(line) for line in spool.path.read_text().splitlines()]
        assert entries[0]["worker_id"] == "spool-id"
        assert entries[1]["worker_id"] == "span-own"

    def test_rotation_bounds_the_spool(self, tmp_path):
        spool = SpanSpool(tmp_path, max_bytes=512)
        for i in range(200):
            spool.record({"name": f"s{i}", "span_id": i, "start": float(i)})
        spool.close()
        rotated = spool.path.with_name(spool.path.name + ".1")
        assert rotated.exists()
        # Two generations, each bounded by max_bytes (plus one line slack).
        assert spool.path.stat().st_size <= 512 + 128
        assert rotated.stat().st_size <= 512 + 128
        # Readers still see both generations, newest data included.
        names = {span["name"] for span in read_spans(tmp_path)}
        assert "s199" in names

    def test_read_spans_skips_torn_lines(self, tmp_path):
        spool = SpanSpool(tmp_path)
        spool.record({"name": "good", "span_id": 1, "start": 1.0})
        spool.close()
        with spool.path.open("a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "span')  # killed mid-write
        spans = read_spans(tmp_path)
        assert [span["name"] for span in spans] == ["good"]

    def test_read_spans_filters_by_trace_id(self, tmp_path):
        spool = SpanSpool(tmp_path)
        spool.record({"name": "mine", "span_id": 1, "start": 1.0, "trace_id": "t1"})
        spool.record({"name": "other", "span_id": 2, "start": 2.0, "trace_id": "t2"})
        spool.close()
        assert [s["name"] for s in read_spans(tmp_path, trace_id="t1")] == ["mine"]

    def test_read_spans_orders_across_files_by_start(self, tmp_path):
        late = SpanSpool(tmp_path)
        late.path = tmp_path / "spans-host-111.jsonl"
        late.record({"name": "late", "span_id": 9, "start": 9.0})
        late.close()
        early = SpanSpool(tmp_path)
        early.path = tmp_path / "spans-host-222.jsonl"
        early.record({"name": "early", "span_id": 1, "start": 1.0})
        early.close()
        assert [s["name"] for s in read_spans(tmp_path)] == ["early", "late"]


class TestPrune:
    def test_prune_deletes_oldest_beyond_cap(self, tmp_path):
        for i in range(6):
            path = tmp_path / f"spans-host-{i}.jsonl"
            path.write_text("{}\n")
            os.utime(path, (i, i))  # mtime order == index order
        removed = prune_obs_dir(tmp_path, "spans", max_files=4)
        assert [path.name for path in removed] == [
            "spans-host-0.jsonl", "spans-host-1.jsonl"
        ]
        assert len(list(tmp_path.glob("spans-*"))) == 4

    def test_prune_missing_directory_is_noop(self, tmp_path):
        assert prune_obs_dir(tmp_path / "absent", "spans") == []


class TestMergeTrace:
    def _spans(self):
        return [
            {"name": "http.submit", "span_id": 1, "start": 10.0, "duration": 0.01,
             "thread": "http", "pid": 100, "trace_id": "t1", "worker_id": "serve:100"},
            {"name": "worker.execute", "span_id": 2, "start": 11.0, "duration": 1.0,
             "thread": "MainThread", "pid": 200, "trace_id": "t1",
             "worker_id": "host:200"},
        ]

    def test_merge_produces_one_multi_process_document(self):
        document = merge_trace(self._spans())
        meta = document["metadata"]
        assert meta["trace_id"] == "t1"
        assert meta["span_count"] == 2
        assert meta["pids"] == [100, 200]
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names == {"serve:100", "host:200"}

    def test_queue_wait_span_matches_the_store_observation(self):
        """The synthetic span must equal started - max(created, not_before)."""
        job = {
            "id": "j1", "trace_id": "t1", "state": "done",
            "created_at": 9.0, "not_before": 10.5, "started_at": 11.0,
        }
        document = merge_trace(self._spans(), job=job)
        wait = next(
            e for e in document["traceEvents"] if e["name"] == "queue.wait"
        )
        assert wait["pid"] == 0
        assert wait["ts"] == pytest.approx(10.5e6)
        assert wait["dur"] == pytest.approx(0.5e6)  # 11.0 - max(9.0, 10.5)
        assert document["metadata"]["queue_wait_s"] == pytest.approx(0.5)

    def test_unstarted_job_has_no_queue_wait(self):
        job = {"id": "j1", "trace_id": "t1", "created_at": 9.0, "started_at": None}
        document = merge_trace([], job=job)
        assert document["metadata"]["queue_wait_s"] is None
        assert document["metadata"]["span_count"] == 0


class TestSnapshotRing:
    def test_snapshot_appends_entries(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        ring = SnapshotRing(tmp_path, worker_id="w1", capacity=10)
        ring.snapshot(registry, now=100.0)
        ring.snapshot(registry, now=101.0)
        history = read_metrics_history(tmp_path)
        assert [entry["ts"] for entry in history] == [100.0, 101.0]
        assert history[0]["worker_id"] == "w1"
        assert history[0]["metrics"]["x"][0]["value"] == 3

    def test_file_is_bounded_by_compaction(self, tmp_path):
        registry = MetricsRegistry()
        ring = SnapshotRing(tmp_path, capacity=5)
        for i in range(40):
            ring.snapshot(registry, now=float(i))
        lines = ring.path.read_text().splitlines()
        assert len(lines) <= 2 * 5  # file never exceeds 2x capacity
        history = read_metrics_history(tmp_path)
        assert history[-1]["ts"] == 39.0  # newest entries survive

    def test_history_since_and_limit(self, tmp_path):
        registry = MetricsRegistry()
        ring = SnapshotRing(tmp_path, capacity=50)
        for i in range(10):
            ring.snapshot(registry, now=float(i))
        assert [e["ts"] for e in read_metrics_history(tmp_path, since=6.0)] == [
            7.0, 8.0, 9.0
        ]
        assert [e["ts"] for e in read_metrics_history(tmp_path, limit=2)] == [
            8.0, 9.0
        ]

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            SnapshotRing(tmp_path, capacity=0)


class TestProcessTelemetry:
    def test_spans_recorded_while_started_are_spooled(self, tmp_path):
        db = tmp_path / "serve.db"
        buffer = TraceBuffer()
        telemetry = ProcessTelemetry(
            db, worker_id="w1", snapshot_interval=0, buffer=buffer
        )
        with telemetry:
            with trace_context(trace_id="t-live"):
                with trace_span("inside", buffer=buffer):
                    pass
        # After stop the sink is removed: new spans do not spool.
        with trace_span("after", buffer=buffer):
            pass
        names = [span["name"] for span in read_spans(obs_dir_for(db))]
        assert names == ["inside"]
        # stop() always takes one final metrics snapshot.
        assert read_metrics_history(obs_dir_for(db))

    def test_start_and_stop_are_idempotent(self, tmp_path):
        telemetry = ProcessTelemetry(
            tmp_path / "serve.db", snapshot_interval=0, buffer=TraceBuffer()
        )
        telemetry.start()
        telemetry.start()
        telemetry.stop()
        telemetry.stop()

    def test_snapshot_thread_writes_history(self, tmp_path):
        import time

        db = tmp_path / "serve.db"
        telemetry = ProcessTelemetry(
            db, snapshot_interval=0.02, buffer=TraceBuffer()
        )
        with telemetry:
            deadline = time.time() + 5.0
            while not read_metrics_history(obs_dir_for(db)):
                assert time.time() < deadline, "no snapshot within 5s"
                time.sleep(0.02)
