"""The analytic-validate experiment: grid sampling, bounds, reporting."""

from __future__ import annotations

import pytest

from repro.analytic.validate import (
    DEFAULT_ERROR_BOUNDS,
    VALIDATED_METRICS,
    sample_validation_points,
)
from repro.api import ExperimentRequest, RunOptions, run_experiment
from repro.eval.common import ExperimentScale


def _run_validate(**params):
    return run_experiment(
        ExperimentRequest(
            experiment="analytic-validate",
            scale=ExperimentScale.smoke(),
            params=params,
        ),
        options=RunOptions(use_cache=False, parallel=False),
    )


class TestSampling:
    def test_seeded_and_deterministic(self):
        workloads = (("AlexNet", "CIFAR-10"),)
        a = sample_validation_points(workloads, samples=6, seed=3)
        b = sample_validation_points(workloads, samples=6, seed=3)
        c = sample_validation_points(workloads, samples=6, seed=4)
        assert a == b
        assert a != c

    def test_points_stress_every_arch_knob(self):
        points = sample_validation_points((("AlexNet", "CIFAR-10"),), 12, seed=0)
        override_keys = set()
        for point in points:
            override_keys.update(dict(point.overrides))
            assert point.sparse_config()  # valid by construction
        assert {
            "num_pes",
            "buffer_kib",
            "pe_utilization",
            "dram_words_per_cycle",
            "weight_reload_overhead",
            "sync_cycles_per_layer",
            "batch_size",
        } <= override_keys


class TestValidateExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_validate(samples=6)

    def test_passes_within_default_bounds(self, result):
        assert result.payload["ok"] is True
        assert result.payload["violations"] == []
        assert result.payload["samples"] == 6

    def test_payload_covers_every_metric(self, result):
        reported = {entry["metric"] for entry in result.payload["metrics"]}
        assert reported == set(VALIDATED_METRICS)
        assert result.payload["bounds"] == DEFAULT_ERROR_BOUNDS

    def test_errors_are_float_noise_not_model_error(self, result):
        # The two paths share their formulas; only summation order differs.
        assert result.payload["max_rel_error"] < 1e-12

    def test_summary_reports_pass(self, result):
        assert "PASS" in result.summary

    def test_max_rel_error_gauge_updated(self, result):
        from repro.obs import metrics

        snapshot = metrics().snapshot()
        entries = snapshot.get("analytic.validate.max_rel_error", ())
        assert entries
        assert entries[0]["value"] == result.payload["max_rel_error"]

    def test_unreachable_bound_fails_loudly(self):
        result = _run_validate(samples=4, bounds={"latency_us": -1.0})
        assert result.payload["ok"] is False
        assert "latency_us" in result.payload["violations"]
        assert "FAIL" in result.summary


class TestCliExitCode:
    """``repro run analytic-validate`` is the CI gate: exit code = verdict."""

    def test_pass_exits_zero_and_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "validate.json"
        code = main(
            ["run", "analytic-validate", "--smoke", "--no-cache", "--out", str(out)]
        )
        assert code == 0
        import json

        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["payload"]["ok"] is True
        assert doc["payload"]["metrics"]

    def test_bound_violation_exits_nonzero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "analytic-validate",
                "--smoke",
                "--no-cache",
                "--set",
                'bounds={"latency_us": -1.0}',
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
