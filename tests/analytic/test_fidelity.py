"""The fidelity knob: enum semantics and simulate-stage dispatch."""

from __future__ import annotations

import pytest

from repro.analytic.fidelity import (
    DEFAULT_FIDELITY,
    FIDELITY_CHOICES,
    Fidelity,
    fidelity_of,
)
from repro.api import (
    ExperimentRequest,
    PipelineContext,
    RunOptions,
    fidelity_dispatch,
    run_experiment,
)
from repro.eval.common import ExperimentScale


class TestFidelityEnum:
    def test_choices_cover_the_three_tiers(self):
        assert FIDELITY_CHOICES == ("analytic", "vectorized", "scalar")
        assert DEFAULT_FIDELITY is Fidelity.VECTORIZED

    def test_normalize_accepts_enum_and_strings(self):
        assert Fidelity.normalize(Fidelity.ANALYTIC) is Fidelity.ANALYTIC
        assert Fidelity.normalize("analytic") is Fidelity.ANALYTIC
        assert Fidelity.normalize("  Scalar ") is Fidelity.SCALAR

    @pytest.mark.parametrize("bad", ["exact", "", None, 3])
    def test_normalize_rejects_unknown(self, bad):
        with pytest.raises(ValueError, match="unknown fidelity"):
            Fidelity.normalize(bad)

    def test_fidelity_of_defaults_for_plain_objects(self):
        assert fidelity_of(object()) is DEFAULT_FIDELITY
        assert (
            fidelity_of(ExperimentRequest(experiment="sweep", fidelity="analytic"))
            is Fidelity.ANALYTIC
        )


class TestRequestFidelityField:
    def test_default_and_normalization(self):
        assert ExperimentRequest(experiment="sweep").fidelity == "vectorized"
        assert (
            ExperimentRequest(experiment="sweep", fidelity=" ANALYTIC ").fidelity
            == "analytic"
        )

    def test_invalid_fidelity_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            ExperimentRequest(experiment="sweep", fidelity="exact")

    def test_with_fidelity_round_trip(self):
        request = ExperimentRequest(experiment="sweep")
        analytic = request.with_fidelity(Fidelity.ANALYTIC)
        assert analytic.fidelity == "analytic"
        assert analytic.with_fidelity("vectorized") == request

    def test_with_params_preserves_fidelity(self):
        request = ExperimentRequest(experiment="sweep", fidelity="analytic")
        assert request.with_params(sample=3).fidelity == "analytic"


def _ctx(fidelity: str) -> PipelineContext:
    return PipelineContext(
        request=ExperimentRequest(experiment="sweep", fidelity=fidelity)
    )


class TestFidelityDispatch:
    def test_each_tier_routes_to_its_impl(self):
        impls = dict(
            vectorized=lambda ctx: "v",
            analytic=lambda ctx: "a",
            scalar=lambda ctx: "s",
        )
        assert fidelity_dispatch(_ctx("vectorized"), **impls) == "v"
        assert fidelity_dispatch(_ctx("analytic"), **impls) == "a"
        assert fidelity_dispatch(_ctx("scalar"), **impls) == "s"

    def test_scalar_falls_back_to_vectorized(self):
        assert (
            fidelity_dispatch(_ctx("scalar"), vectorized=lambda ctx: "v") == "v"
        )

    def test_analytic_without_impl_is_loud(self):
        with pytest.raises(ValueError, match="no analytic tier"):
            fidelity_dispatch(_ctx("analytic"), vectorized=lambda ctx: "v")

    def test_dispatch_counter_labelled_by_tier(self):
        from repro.obs import metrics

        def tier_count(tier: str) -> float:
            snapshot = metrics().snapshot()
            return sum(
                entry["value"]
                for entry in snapshot.get("pipeline.fidelity.dispatch", ())
                if entry["labels"].get("tier") == tier
            )

        before = tier_count("analytic")
        fidelity_dispatch(_ctx("analytic"), vectorized=lambda c: 0, analytic=lambda c: 0)
        assert tier_count("analytic") == before + 1


class TestTierEquivalence:
    """scalar and analytic tiers against the default, end to end."""

    @pytest.fixture(scope="class")
    def sweep_results(self):
        def run(fidelity: str):
            return run_experiment(
                ExperimentRequest(
                    experiment="sweep",
                    workloads=(("AlexNet", "CIFAR-10"),),
                    params={
                        "pes": [84, 168],
                        "buffers": [386],
                        "pruning_rates": [0.9],
                    },
                    fidelity=fidelity,
                ),
                options=RunOptions(use_cache=False, parallel=False),
            )

        return {tier: run(tier) for tier in ("vectorized", "scalar", "analytic")}

    def test_scalar_is_numerically_identical(self, sweep_results):
        vec = sweep_results["vectorized"].native["records"]
        sca = sweep_results["scalar"].native["records"]
        assert [r.to_dict() for r in vec] == [r.to_dict() for r in sca]

    def test_analytic_matches_to_float_noise(self, sweep_results):
        vec = sweep_results["vectorized"].native["records"]
        ana = sweep_results["analytic"].native["records"]
        assert len(vec) == len(ana)
        for v, a in zip(vec, ana):
            assert a.key != v.key  # fidelity-salted
            assert a.latency_us == pytest.approx(v.latency_us, rel=1e-9)
            assert a.energy_uj == pytest.approx(v.energy_uj, rel=1e-9)
            assert a.speedup == pytest.approx(v.speedup, rel=1e-9)

    def test_fig8_analytic_tier(self):
        request = ExperimentRequest(
            experiment="fig8",
            workloads=(("AlexNet", "CIFAR-10"),),
            scale=ExperimentScale.smoke(),
            fidelity="analytic",
        )
        vectorized = run_experiment(
            request.with_fidelity("vectorized"),
            options=RunOptions(use_cache=False),
        )
        analytic = run_experiment(request, options=RunOptions(use_cache=False))
        va = vectorized.payload["workloads"]["AlexNet/CIFAR-10"]
        aa = analytic.payload["workloads"]["AlexNet/CIFAR-10"]
        for metric, value in va.items():
            assert aa[metric] == pytest.approx(value, rel=1e-9)
