"""The analytic tier must agree with the simulator to float-noise level.

Both paths compute identical closed-form expected values; any disagreement
beyond summation-order noise (~1e-12 relative) is a structural divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.model import (
    analytic_point_key,
    analytic_simulation_result,
    compare_workload_analytic,
    evaluate_points_analytic,
    run_workload_jobs_analytic,
)
from repro.explore.engine import DesignPoint, analytic_densities, evaluate_point
from repro.models.zoo import get_model_spec
from repro.sim.runner import (
    WorkloadJob,
    compare_workload,
    simulate_baseline,
    simulate_sparsetrain,
)

RTOL = 1e-9

RECORD_METRICS = (
    "latency_us",
    "energy_uj",
    "area_mm2",
    "baseline_latency_us",
    "baseline_energy_uj",
    "speedup",
    "energy_efficiency",
)

POINTS = [
    DesignPoint(model="AlexNet", dataset="CIFAR-10", pruning_rate=0.9),
    DesignPoint(
        model="AlexNet",
        dataset="CIFAR-10",
        pruning_rate=0.7,
        overrides=(("buffer_kib", 192), ("num_pes", 84)),
    ),
    DesignPoint(
        model="ResNet-18",
        dataset="CIFAR-10",
        pruning_rate=0.95,
        overrides=(("batch_size", 16), ("pe_utilization", 0.7)),
    ),
    DesignPoint(
        model="MobileNetV1",
        dataset="CIFAR-10",
        pruning_rate=0.5,
        overrides=(("dram_words_per_cycle", 8.0),),
        energy_overrides=(("dram_pj", 80.0),),
    ),
    DesignPoint(model="VGG-16", dataset="ImageNet", pruning_rate=0.9),
]


class TestBatchedRecordsMatchSimulator:
    @pytest.fixture(scope="class")
    def pairs(self):
        analytic = evaluate_points_analytic(POINTS)
        simulated = [evaluate_point(point) for point in POINTS]
        return list(zip(analytic, simulated))

    @pytest.mark.parametrize("metric", RECORD_METRICS)
    def test_metric_within_float_noise(self, pairs, metric):
        for analytic, simulated in pairs:
            assert getattr(analytic, metric) == pytest.approx(
                getattr(simulated, metric), rel=RTOL
            )

    def test_non_metric_fields_carried_over(self, pairs):
        for analytic, simulated in pairs:
            assert analytic.model == simulated.model
            assert analytic.dataset == simulated.dataset
            assert analytic.pruning_rate == simulated.pruning_rate
            assert analytic.overrides == simulated.overrides
            assert analytic.num_pes == simulated.num_pes
            assert analytic.buffer_kib == simulated.buffer_kib

    def test_records_are_plain_floats(self, pairs):
        # numpy scalars would break the exact CSV round-trip of the report
        # module, like the simulator path they must be built-in floats.
        for analytic, _ in pairs:
            for metric in RECORD_METRICS:
                assert type(getattr(analytic, metric)) is float


class TestAnalyticKeys:
    def test_salted_keys_differ_from_simulator_keys(self):
        for point in POINTS:
            assert analytic_point_key(point) != point.key

    def test_records_carry_salted_keys(self):
        records = evaluate_points_analytic(POINTS[:2])
        assert [record.key for record in records] == [
            analytic_point_key(point) for point in POINTS[:2]
        ]

    def test_dedup_first_seen_order(self):
        records = evaluate_points_analytic([POINTS[0], POINTS[1], POINTS[0]])
        assert len(records) == 2
        assert records[0].key == analytic_point_key(POINTS[0])
        assert records[1].key == analytic_point_key(POINTS[1])

    def test_chunking_is_invisible(self):
        many = [
            DesignPoint(
                model="AlexNet",
                dataset="CIFAR-10",
                pruning_rate=round(0.5 + 0.004 * index, 6),
            )
            for index in range(100)
        ]
        whole = evaluate_points_analytic(many)
        chunked = evaluate_points_analytic(many, chunk_points=7)
        assert [record.to_dict() for record in whole] == [
            record.to_dict() for record in chunked
        ]


class TestMaterializedSimulationResult:
    @pytest.fixture(scope="class")
    def spec_and_densities(self):
        spec = get_model_spec("AlexNet", "CIFAR-10")
        return spec, analytic_densities(spec, 0.9)

    def test_sparse_steps_match_simulator(self, spec_and_densities):
        spec, densities = spec_and_densities
        config = DesignPoint(model="AlexNet", dataset="CIFAR-10").sparse_config()
        analytic = analytic_simulation_result(spec, densities, config)
        simulated = simulate_sparsetrain(spec, densities, config)
        assert len(analytic.steps) == len(simulated.steps)
        for a, s in zip(analytic.steps, simulated.steps):
            assert (a.layer_name, a.step) == (s.layer_name, s.step)
            assert a.cycles == pytest.approx(s.cycles, rel=RTOL)
            assert a.compute_cycles == pytest.approx(s.compute_cycles, rel=RTOL)
            assert a.dram_cycles == pytest.approx(s.dram_cycles, rel=RTOL)
            assert a.events.macs == pytest.approx(s.events.macs, rel=RTOL)
            assert a.events.sram_words == pytest.approx(s.events.sram_words, rel=RTOL)
            assert a.events.dram_words == pytest.approx(s.events.dram_words, rel=RTOL)

    def test_baseline_steps_match_simulator(self, spec_and_densities):
        spec, _ = spec_and_densities
        config = DesignPoint(model="AlexNet", dataset="CIFAR-10").baseline_config()
        analytic = analytic_simulation_result(spec, None, config, sparse=False)
        simulated = simulate_baseline(spec, config)
        assert analytic.total_cycles == pytest.approx(
            simulated.total_cycles, rel=RTOL
        )
        assert analytic.energy_uj == pytest.approx(simulated.energy_uj, rel=RTOL)

    def test_energy_fractions_match(self, spec_and_densities):
        # Fig. 9 slices per-component energy; the analytic result must carry
        # a real breakdown, not just totals.
        spec, densities = spec_and_densities
        analytic = compare_workload_analytic(spec, densities)
        simulated = compare_workload(spec, densities)
        fa = analytic.comparison.sparsetrain.energy_fractions()
        fs = simulated.comparison.sparsetrain.energy_fractions()
        for component in fs:
            assert fa[component] == pytest.approx(fs[component], rel=1e-6)

    def test_workload_jobs_front_end(self, spec_and_densities):
        spec, densities = spec_and_densities
        job = WorkloadJob(spec=spec, densities=densities)
        (analytic,) = run_workload_jobs_analytic([job])
        simulated = compare_workload(spec, densities)
        assert analytic.speedup == pytest.approx(simulated.speedup, rel=RTOL)
        assert analytic.energy_efficiency == pytest.approx(
            simulated.energy_efficiency, rel=RTOL
        )


class TestObsCounters:
    def test_points_evaluated_counter_increments(self):
        from repro.obs import metrics

        def total() -> float:
            snapshot = metrics().snapshot()
            return sum(
                entry["value"]
                for entry in snapshot.get("analytic.points_evaluated", ())
            )

        before = total()
        evaluate_points_analytic(POINTS[:3])
        assert total() == before + 3
