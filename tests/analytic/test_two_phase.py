"""Two-phase sweeps: analytic full grid, Pareto band re-simulated exactly."""

from __future__ import annotations

import pytest

from repro.api import ExperimentRequest, RunOptions, run_experiment
from repro.explore.engine import DesignPoint, ExplorationEngine


def _sweep_request(**extra_params) -> ExperimentRequest:
    params = {
        "pes": [84, 168, 336],
        "buffers": [192, 386],
        "pruning_rates": [0.7, 0.9],
        **extra_params,
    }
    return ExperimentRequest(
        experiment="sweep",
        workloads=(("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10")),
        params=params,
        fidelity="analytic",
    )


class TestTwoPhaseSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            _sweep_request(resim_pareto=True),
            options=RunOptions(use_cache=False, parallel=False),
        )

    def test_band_is_bit_identical_to_direct_simulation(self, result):
        resimulated = result.native["resimulated"]
        assert resimulated
        # Re-simulate the same points directly through a fresh engine: the
        # band records must match bit for bit (same keys, same floats).
        points = [
            DesignPoint(
                model=record.model,
                dataset=record.dataset,
                pruning_rate=record.pruning_rate,
                overrides=record.overrides,
            )
            for record in resimulated
        ]
        direct = ExplorationEngine(cache=None, parallel=False).run(points)
        assert [r.to_dict() for r in direct] == [r.to_dict() for r in resimulated]

    def test_band_uses_legacy_simulator_keys(self, result):
        analytic_keys = {record.key for record in result.native["records"]}
        for record in result.native["resimulated"]:
            assert record.key not in analytic_keys

    def test_band_is_a_subset_of_the_grid(self, result):
        grid = {
            (r.model, r.dataset, r.pruning_rate, r.num_pes, r.buffer_kib)
            for r in result.native["records"]
        }
        band = {
            (r.model, r.dataset, r.pruning_rate, r.num_pes, r.buffer_kib)
            for r in result.native["resimulated"]
        }
        assert band <= grid
        assert len(band) < len(grid)

    def test_payload_carries_both_phases(self, result):
        assert len(result.payload["records"]) == len(result.native["records"])
        assert len(result.payload["resimulated"]) == len(
            result.native["resimulated"]
        )
        assert "analytic" in result.payload["stats"]
        assert "simulated" in result.payload["resim_stats"]


class TestGridFastPath:
    """Full grids skip point materialization; results must not change."""

    def test_grid_evaluator_matches_point_list_bit_for_bit(self):
        from repro.analytic.model import (
            AnalyticGridPlan,
            evaluate_grid_analytic,
            evaluate_points_analytic,
        )
        from repro.explore.engine import points_for
        from repro.explore.space import DesignSpace, grid_axis

        pes, buffers, rates = (84, 168, 336), (192, 386), (0.5, 0.9)
        workloads = (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10"))
        grid = evaluate_grid_analytic(
            AnalyticGridPlan(workloads=workloads, pes=pes, buffers=buffers, rates=rates)
        )
        space = DesignSpace(
            axes=(
                grid_axis("num_pes", pes),
                grid_axis("buffer_kib", buffers),
                grid_axis("pruning_rate", rates),
            )
        )
        via_points = evaluate_points_analytic(points_for(space, list(workloads)))
        assert len(grid) == len(via_points) == 24
        assert [r.to_dict() for r in grid] == [r.to_dict() for r in via_points]

    def test_sampled_sweep_uses_the_point_path(self):
        # ``sample`` has seeded-subset semantics the grid plan cannot honour.
        result = run_experiment(
            _sweep_request(sample=5, seed=1),
            options=RunOptions(use_cache=False, parallel=False),
        )
        assert len(result.native["records"]) == 10  # 5 sampled x 2 workloads
        for record in result.native["records"]:
            assert record.key.startswith("analytic:")

    def test_duplicate_axis_values_rejected_like_every_tier(self):
        # The grid plan only covers duplicate-free axes; duplicates fall
        # through to the DesignSpace path, which rejects them exactly as the
        # vectorized tier would.
        with pytest.raises(ValueError, match="duplicate values"):
            run_experiment(
                _sweep_request(pes=[84, 84, 168]),
                options=RunOptions(use_cache=False, parallel=False),
            )


class TestAnalyticSweepWithoutResim:
    def test_no_band_by_default(self):
        result = run_experiment(
            _sweep_request(),
            options=RunOptions(use_cache=False, parallel=False),
        )
        assert "resimulated" not in result.native
        assert "resimulated" not in result.payload

    def test_payload_record_cap(self):
        result = run_experiment(
            _sweep_request(max_records=5),
            options=RunOptions(use_cache=False, parallel=False),
        )
        assert len(result.native["records"]) == 24
        assert len(result.payload["records"]) == 5
        assert result.payload["records_truncated"] is True
        assert result.payload["records_total"] == 24
        # The cap keeps the best (latency-ranked) records.
        kept = [record["latency_us"] for record in result.payload["records"]]
        assert kept == sorted(kept)

    def test_analytic_records_not_written_to_sweep_cache(self, tmp_path):
        options = RunOptions(use_cache=True, cache_dir=tmp_path, parallel=False)
        run_experiment(_sweep_request(), options=options)
        cache = options.sweep_cache()
        assert len(cache) == 0

    def test_large_grid_is_fast(self):
        # ~2.4k points in well under the simulated default's wall clock.
        import time

        request = ExperimentRequest(
            experiment="sweep",
            workloads=(("AlexNet", "CIFAR-10"),),
            params={
                "pes": [3 * n for n in range(8, 48)],
                "buffers": list(range(64, 364, 50)),
                "pruning_rates": [0.5 + 0.05 * i for i in range(10)],
            },
            fidelity="analytic",
        )
        start = time.perf_counter()
        result = run_experiment(
            request, options=RunOptions(use_cache=False, parallel=False)
        )
        elapsed = time.perf_counter() - start
        assert len(result.native["records"]) == 40 * 6 * 10
        assert elapsed < 30.0
