"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_cifar_like
from repro.models.spec import ConvLayerSpec, ConvStructure


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset():
    """A small, learnable synthetic dataset (160 samples, 3 classes, 8x8)."""
    dataset = make_cifar_like(
        num_samples=160, num_classes=4, image_size=8, rng=np.random.default_rng(0)
    )
    return dataset


@pytest.fixture
def small_conv_layer() -> ConvLayerSpec:
    """A small convolution layer spec used across dataflow/arch tests."""
    return ConvLayerSpec(
        name="conv_test",
        in_channels=3,
        out_channels=4,
        kernel=3,
        stride=1,
        padding=1,
        in_height=8,
        in_width=8,
        structure=ConvStructure.CONV_RELU,
    )


@pytest.fixture
def strided_conv_layer() -> ConvLayerSpec:
    """A strided convolution layer spec (stride 2, odd input)."""
    return ConvLayerSpec(
        name="conv_strided",
        in_channels=2,
        out_channels=3,
        kernel=3,
        stride=2,
        padding=1,
        in_height=9,
        in_width=9,
        structure=ConvStructure.CONV_BN_RELU,
    )


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad


@pytest.fixture
def num_grad():
    """Expose the numerical-gradient helper as a fixture."""
    return numerical_gradient
