"""Round-trip tests for sweep exports (CSV and JSON) and text tables."""

from __future__ import annotations

import json

import pytest

from repro.explore.engine import ExplorationEngine, points_for
from repro.explore.report import (
    export_records,
    format_frontier,
    format_records_table,
    load_records,
    read_csv,
    read_json,
    write_csv,
    write_json,
)
from repro.explore.space import DesignSpace, grid_axis


@pytest.fixture(scope="module")
def records():
    space = DesignSpace(
        axes=(
            grid_axis("num_pes", [84, 168]),
            grid_axis("pruning_rate", [0.5, 0.9]),
        )
    )
    points = points_for(space, [("AlexNet", "CIFAR-10")])
    return ExplorationEngine(parallel=False).run(points)


class TestJsonRoundTrip:
    def test_exact_round_trip(self, records, tmp_path):
        path = tmp_path / "sweep.json"
        write_json(records, path)
        assert read_json(path) == records

    def test_document_shape(self, records, tmp_path):
        path = tmp_path / "sweep.json"
        write_json(records, path)
        payload = json.loads(path.read_text())
        assert payload["count"] == len(records)
        assert len(payload["records"]) == len(records)
        assert payload["records"][0]["model"] == "AlexNet"


class TestCsvRoundTrip:
    def test_exact_round_trip(self, records, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(records, path)
        assert read_csv(path) == records

    def test_header_and_rows(self, records, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(records, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("key,model,dataset,pruning_rate")
        assert len(lines) == len(records) + 1


class TestExportDispatch:
    def test_by_suffix(self, records, tmp_path):
        for name in ("out.csv", "out.json"):
            path = tmp_path / name
            export_records(records, path)
            assert load_records(path) == records

    def test_rejects_unknown_suffix(self, records, tmp_path):
        with pytest.raises(ValueError, match="unsupported export suffix"):
            export_records(records, tmp_path / "out.parquet")
        with pytest.raises(ValueError, match="unsupported import suffix"):
            load_records(tmp_path / "out.parquet")


class TestTables:
    def test_table_contains_every_record(self, records):
        text = format_records_table(records)
        assert text.count("AlexNet/CIFAR-10") == len(records)

    def test_table_limit_reports_overflow(self, records):
        text = format_records_table(records, limit=2)
        assert f"({len(records) - 2} more)" in text

    def test_frontier_header_names_objectives(self, records):
        text = format_frontier(records)
        assert "min latency_us" in text
        assert f"{len(records)} points" in text
