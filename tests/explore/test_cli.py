"""Tests for the ``python -m repro`` command line (sweep / pareto wiring)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.explore import engine as engine_module
from repro.explore.report import load_records


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out


class TestSweepCommand:
    def test_smoke_sweep_serial(self, tmp_path, capsys):
        code, out = run_cli(
            ["sweep", "--smoke", "--serial", "--cache-dir", str(tmp_path)], capsys
        )
        assert code == 0
        assert "AlexNet/CIFAR-10" in out
        assert "ResNet-18/CIFAR-10" in out
        assert "4 points (0 duplicate), 0 cached, 4 simulated" in out

    def test_second_invocation_is_fully_cached(self, tmp_path, capsys, monkeypatch):
        """Acceptance: the repeated CLI sweep performs zero simulator calls."""
        run_cli(["sweep", "--smoke", "--serial", "--cache-dir", str(tmp_path)], capsys)

        def boom(point):
            raise AssertionError("simulator called on the cached pass")

        monkeypatch.setattr(engine_module, "evaluate_point", boom)
        code, out = run_cli(
            ["sweep", "--smoke", "--serial", "--cache-dir", str(tmp_path)], capsys
        )
        assert code == 0
        assert "4 cached, 0 simulated" in out

    def test_default_grid_covers_four_workloads(self, tmp_path, capsys):
        code, out = run_cli(
            [
                "sweep",
                "--serial",
                "--cache-dir",
                str(tmp_path),
                "--pruning-rates",
                "0.9",  # thin one axis: 4 PEs x 3 buffers x 1 rate x 4 workloads
            ],
            capsys,
        )
        assert code == 0
        assert "48 points" in out
        assert "VGG-16/CIFAR-10" in out
        assert "MobileNetV1/CIFAR-10" in out

    def test_model_flag_overrides_workloads(self, tmp_path, capsys):
        """Acceptance: `sweep --model mobilenet --dataset cifar10` runs end-to-end."""
        code, out = run_cli(
            [
                "sweep", "--model", "mobilenet", "--dataset", "cifar10",
                "--smoke", "--serial", "--cache-dir", str(tmp_path),
            ],
            capsys,
        )
        assert code == 0
        assert "MobileNetV1/CIFAR-10" in out
        assert "AlexNet" not in out
        code, out = run_cli(
            [
                "sweep", "--model", "vgg16",
                "--smoke", "--serial", "--cache-dir", str(tmp_path),
            ],
            capsys,
        )
        assert code == 0
        assert "VGG-16/CIFAR-10" in out

    def test_dataset_without_model_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--dataset requires --model"):
            main(
                [
                    "sweep", "--dataset", "imagenet", "--smoke", "--serial",
                    "--cache-dir", str(tmp_path),
                ]
            )

    def test_export_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code, out = run_cli(
            [
                "sweep", "--smoke", "--serial", "--no-cache", "--out", str(out_file),
            ],
            capsys,
        )
        assert code == 0
        assert load_records(out_file)

    def test_rejects_malformed_workload(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--serial", "--no-cache", "--workloads", "AlexNet"])


class TestParetoCommand:
    def test_frontier_per_workload_with_export(self, tmp_path, capsys):
        export = tmp_path / "frontier.csv"
        code, out = run_cli(
            [
                "pareto",
                "--serial",
                "--cache-dir", str(tmp_path),
                "--pes", "84,168,336",
                "--buffers", "386",
                "--pruning-rates", "0.9",
                "--export", str(export),
            ],
            capsys,
        )
        assert code == 0
        assert "[AlexNet/CIFAR-10]" in out
        assert "[ResNet-18/CIFAR-10]" in out
        assert "Pareto frontier" in out
        records = load_records(export)
        # The latency/area trade-off keeps several PE counts on the frontier.
        assert len(records) > 2
        assert len({r.num_pes for r in records}) > 1

    def test_from_file_skips_sweeping(self, tmp_path, capsys, monkeypatch):
        export = tmp_path / "sweep.json"
        run_cli(
            ["sweep", "--smoke", "--serial", "--no-cache", "--out", str(export)],
            capsys,
        )

        def boom(point):
            raise AssertionError("simulator called when loading from file")

        monkeypatch.setattr(engine_module, "evaluate_point", boom)
        code, out = run_cli(
            ["pareto", "--from", str(export), "--objectives", "latency_us,energy_uj"],
            capsys,
        )
        assert code == 0
        assert "loaded 4 records" in out

    def test_rejects_unknown_objective(self, tmp_path, capsys):
        code = main(
            ["pareto", "--smoke", "--serial", "--no-cache", "--objectives", "latency"]
        )
        assert code == 2
        assert "unknown objective" in capsys.readouterr().err

    def test_rejects_bad_export_suffix_before_sweeping(self, capsys, monkeypatch):
        def boom(point):
            raise AssertionError("simulated before the export path was validated")

        monkeypatch.setattr(engine_module, "evaluate_point", boom)
        code = main(
            ["sweep", "--smoke", "--serial", "--no-cache", "--out", "x.parquet"]
        )
        assert code == 2
        assert "unsupported export suffix" in capsys.readouterr().err


class TestParserWiring:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for args in (
            ["sweep", "--smoke"],
            ["pareto", "--objectives", "latency_us"],
            ["fig8", "--paper", "--pruning-rate", "0.8"],
            ["fig9", "--thorough"],
            ["bench", "--smoke", "--out", "bench.json"],
            ["trace", "fig8", "--smoke", "--out", "trace.json"],
            ["stats", "--watch", "--interval", "1"],
        ):
            namespace = parser.parse_args(args)
            assert callable(namespace.func)

    def test_fig_commands_accept_workers_and_cache_flags(self):
        parser = build_parser()
        for command in ("fig8", "fig9"):
            namespace = parser.parse_args(
                [command, "--workers", "4", "--no-cache", "--cache-dir", "/tmp/c"]
            )
            assert namespace.workers == 4
            assert namespace.no_cache is True
            assert namespace.cache_dir == "/tmp/c"
        # Default: caching on, serial simulation.
        namespace = parser.parse_args(["fig8"])
        assert namespace.workers is None and namespace.no_cache is False

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
