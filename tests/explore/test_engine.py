"""Tests for the design-point evaluation engine (dedup, cache, parallel)."""

from __future__ import annotations

import pytest

from repro.arch.area import estimate_area
from repro.explore import engine as engine_module
from repro.explore.cache import ResultCache
from repro.explore.engine import (
    DesignPoint,
    EvaluationRecord,
    ExplorationEngine,
    analytic_densities,
    evaluate_point,
    points_for,
)
from repro.explore.space import DesignSpace, grid_axis, paper_neighborhood_space
from repro.models.zoo import get_model_spec

WORKLOADS = (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10"))

SMALL_SPACE = DesignSpace(
    axes=(
        grid_axis("num_pes", [84, 168]),
        grid_axis("pruning_rate", [0.5, 0.9]),
    )
)


class TestDesignPoint:
    def test_from_assignment_splits_arch_and_pruning(self):
        point = DesignPoint.from_assignment(
            "AlexNet", "CIFAR-10", {"num_pes": 84, "pruning_rate": 0.7}
        )
        assert point.pruning_rate == 0.7
        assert point.sparse_config().num_pes == 84
        assert point.baseline_config().num_pes == 84
        assert not point.baseline_config().sparse_dataflow

    def test_from_assignment_normalizes_names(self):
        point = DesignPoint.from_assignment("resnet18", "cifar10", {})
        assert point.model == "ResNet-18"
        assert point.dataset == "CIFAR-10"

    def test_from_assignment_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown assignment"):
            DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pe": 84})

    def test_from_assignment_validates_config_eagerly(self):
        with pytest.raises(ValueError):
            DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 85})

    def test_key_is_stable_and_input_sensitive(self):
        a = DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 84})
        b = DesignPoint.from_assignment("alexnet", "cifar-10", {"num_pes": 84})
        c = DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 168})
        d = DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 84},
                                        energy_overrides={"sram_pj": 5.0})
        assert a.key == b.key
        assert a.key != c.key
        assert a.key != d.key


class TestEvaluatePoint:
    def test_record_matches_direct_simulation(self):
        point = DesignPoint.from_assignment(
            "AlexNet", "CIFAR-10", {"num_pes": 168, "pruning_rate": 0.9}
        )
        record = evaluate_point(point)
        assert record.key == point.key
        assert record.num_pes == 168
        assert record.buffer_kib == 386
        assert record.speedup > 1.0
        assert record.energy_efficiency > 1.0
        assert record.latency_us < record.baseline_latency_us
        area = estimate_area(point.sparse_config())
        assert record.area_mm2 == pytest.approx(area.total_mm2)

    def test_record_dict_round_trip(self):
        point = DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 84})
        record = evaluate_point(point)
        assert EvaluationRecord.from_dict(record.to_dict()) == record

    def test_analytic_densities_track_pruning_rate(self):
        spec = get_model_spec("AlexNet", "CIFAR-10")
        light = analytic_densities(spec, 0.5)
        heavy = analytic_densities(spec, 0.99)
        name = spec.conv_layers[1].name
        assert heavy[name].grad_output_density < light[name].grad_output_density


class TestPointsFor:
    def test_crosses_space_with_workloads(self):
        points = points_for(SMALL_SPACE, WORKLOADS)
        assert len(points) == SMALL_SPACE.size * len(WORKLOADS)
        assert len({p.key for p in points}) == len(points)

    def test_sampled_subset(self):
        points = points_for(paper_neighborhood_space(), WORKLOADS, sample=5, seed=1)
        assert len(points) == 5 * len(WORKLOADS)


class TestExplorationEngine:
    def test_serial_run_returns_input_order(self):
        points = points_for(SMALL_SPACE, WORKLOADS)
        engine = ExplorationEngine(parallel=False)
        records = engine.run(points)
        assert [r.key for r in records] == [p.key for p in points]
        assert engine.stats.requested == len(points)
        assert engine.stats.evaluated == len(points)
        assert engine.stats.cache_hits == 0

    def test_deduplicates_identical_points(self):
        point = DesignPoint.from_assignment("AlexNet", "CIFAR-10", {"num_pes": 84})
        engine = ExplorationEngine(parallel=False)
        records = engine.run([point, point, point])
        assert len(records) == 1
        assert engine.stats.requested == 3
        assert engine.stats.deduplicated == 2
        assert engine.stats.evaluated == 1

    def test_parallel_matches_serial(self):
        points = points_for(SMALL_SPACE, WORKLOADS)
        serial = ExplorationEngine(parallel=False).run(points)
        parallel = ExplorationEngine(parallel=True, max_workers=2).run(points)
        assert serial == parallel

    def test_cache_populated_and_reused(self, tmp_path):
        points = points_for(SMALL_SPACE, WORKLOADS[:1])
        cache = ResultCache(tmp_path / "cache.jsonl")
        first = ExplorationEngine(cache=cache, parallel=False)
        records = first.run(points)
        assert first.stats.evaluated == len(points)
        assert len(cache) == len(points)

        second = ExplorationEngine(cache=ResultCache(tmp_path / "cache.jsonl"),
                                   parallel=False)
        assert second.run(points) == records
        assert second.stats.cache_hits == len(points)
        assert second.stats.evaluated == 0

    def test_cached_pass_makes_zero_simulator_calls(self, tmp_path, monkeypatch):
        """Acceptance: a warm cache short-circuits the simulator entirely."""
        points = points_for(SMALL_SPACE, WORKLOADS)
        cache_path = tmp_path / "cache.jsonl"
        warm = ExplorationEngine(cache=ResultCache(cache_path), parallel=False)
        expected = warm.run(points)

        def boom(point):
            raise AssertionError(f"simulator called for {point.workload}")

        monkeypatch.setattr(engine_module, "evaluate_point", boom)
        cold = ExplorationEngine(cache=ResultCache(cache_path), parallel=False)
        assert cold.run(points) == expected
        assert cold.stats.evaluated == 0
        assert cold.stats.cache_hits == len(points)

    def test_partial_cache_only_simulates_misses(self, tmp_path):
        cache_path = tmp_path / "cache.jsonl"
        first_half = points_for(SMALL_SPACE, WORKLOADS[:1])
        ExplorationEngine(cache=ResultCache(cache_path), parallel=False).run(first_half)

        everything = points_for(SMALL_SPACE, WORKLOADS)
        engine = ExplorationEngine(cache=ResultCache(cache_path), parallel=False)
        records = engine.run(everything)
        assert len(records) == len(everything)
        assert engine.stats.cache_hits == len(first_half)
        assert engine.stats.evaluated == len(everything) - len(first_half)

    def test_run_iter_streams_all_records(self):
        points = points_for(SMALL_SPACE, WORKLOADS[:1])
        engine = ExplorationEngine(parallel=False)
        streamed = list(engine.run_iter(points))
        assert {r.key for r in streamed} == {p.key for p in points}
