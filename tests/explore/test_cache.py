"""Tests for the persistent JSON-lines result cache."""

from __future__ import annotations

import warnings

import pytest

from repro.explore.cache import ResultCache, stable_key


class TestStableKey:
    def test_insensitive_to_key_order(self):
        assert stable_key({"a": 1, "b": [2, 3]}) == stable_key({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert stable_key({"a": 1}) != stable_key({"a": 2})
        assert stable_key({"a": 1}) != stable_key({"a": 1.5})


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.jsonl")
        assert cache.get("k") is None
        cache.put("k", {"value": 1.5, "name": "x"})
        assert cache.get("k") == {"value": 1.5, "name": "x"}
        assert "k" in cache
        assert len(cache) == 1

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ResultCache(path)
        first.put("a", {"v": 1})
        first.put("b", {"v": 2})
        second = ResultCache(path)
        assert len(second) == 2
        assert second.get("a") == {"v": 1}
        assert second.get("b") == {"v": 2}

    def test_identical_put_does_not_grow_file(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        size = path.stat().st_size
        cache.put("a", {"v": 1})
        assert path.stat().st_size == size

    def test_survives_corrupt_lines_with_a_warning(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "trunc')  # interrupted writer
        with pytest.warns(RuntimeWarning, match="1 corrupt/truncated"):
            reloaded = ResultCache(path)
        assert reloaded.get("a") == {"v": 1}
        assert len(reloaded) == 1

    def test_torn_write_between_good_lines(self, tmp_path):
        """Corruption in the middle of the file loses only that entry."""
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "record"\n')  # torn mid-record
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "record": {"v": 3}}\n')
        with pytest.warns(RuntimeWarning):
            reloaded = ResultCache(path)
        assert reloaded.get("a") == {"v": 1}
        assert reloaded.get("b") is None
        assert reloaded.get("c") == {"v": 3}
        assert len(reloaded) == 2

    def test_clean_cache_loads_without_warning(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ResultCache(path).put("a", {"v": 1})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ResultCache(path).get("a") == {"v": 1}

    def test_clear_removes_file_and_entries(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert not path.exists()
        assert len(ResultCache(path)) == 0

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        assert path.exists()
