"""Tests for Pareto-frontier extraction and objective parsing."""

from __future__ import annotations

import pytest

from repro.explore.engine import EvaluationRecord
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    best_point,
    dominates,
    pareto_by_workload,
    pareto_frontier,
    parse_objectives,
)


def make_record(
    key: str,
    latency: float,
    energy: float,
    area: float,
    model: str = "AlexNet",
    speedup: float = 2.0,
) -> EvaluationRecord:
    return EvaluationRecord(
        key=key,
        model=model,
        dataset="CIFAR-10",
        pruning_rate=0.9,
        overrides=(),
        num_pes=168,
        buffer_kib=386,
        latency_us=latency,
        energy_uj=energy,
        area_mm2=area,
        baseline_latency_us=latency * speedup,
        baseline_energy_uj=energy * 2.0,
        speedup=speedup,
        energy_efficiency=2.0,
    )


class TestDominance:
    def test_strictly_better_everywhere(self):
        a = make_record("a", 1.0, 1.0, 1.0)
        b = make_record("b", 2.0, 2.0, 2.0)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = make_record("a", 1.0, 1.0, 1.0)
        b = make_record("b", 1.0, 1.0, 1.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_trade_off_points_do_not_dominate(self):
        fast_big = make_record("a", 1.0, 1.0, 4.0)
        slow_small = make_record("b", 4.0, 1.0, 1.0)
        assert not dominates(fast_big, slow_small)
        assert not dominates(slow_small, fast_big)

    def test_maximize_objective_flips_direction(self):
        high = make_record("a", 1.0, 1.0, 1.0, speedup=4.0)
        low = make_record("b", 1.0, 1.0, 1.0, speedup=2.0)
        assert dominates(high, low, [Objective("speedup", maximize=True)])
        assert not dominates(low, high, [Objective("speedup", maximize=True)])


class TestParetoFrontier:
    def test_extracts_trade_off_surface(self):
        records = [
            make_record("fast", 1.0, 3.0, 4.0),
            make_record("balanced", 2.0, 2.0, 2.0),
            make_record("small", 4.0, 3.0, 1.0),
            make_record("dominated", 4.0, 4.0, 4.0),
        ]
        frontier = pareto_frontier(records)
        assert [r.key for r in frontier] == ["fast", "balanced", "small"]

    def test_duplicate_objective_vectors_kept_once(self):
        records = [
            make_record("first", 1.0, 1.0, 1.0),
            make_record("twin", 1.0, 1.0, 1.0),
        ]
        frontier = pareto_frontier(records)
        assert [r.key for r in frontier] == ["first"]

    def test_single_objective_gives_single_point(self):
        records = [make_record(str(i), float(i + 1), 1.0, 1.0) for i in range(5)]
        frontier = pareto_frontier(records, [Objective("latency_us")])
        assert [r.key for r in frontier] == ["0"]

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_by_workload_groups_independently(self):
        records = [
            make_record("a-good", 1.0, 1.0, 1.0, model="AlexNet"),
            make_record("a-bad", 2.0, 2.0, 2.0, model="AlexNet"),
            # Worse than every AlexNet point, but the only ResNet point.
            make_record("r-only", 9.0, 9.0, 9.0, model="ResNet-18"),
        ]
        frontiers = pareto_by_workload(records)
        assert [r.key for r in frontiers["AlexNet/CIFAR-10"]] == ["a-good"]
        assert [r.key for r in frontiers["ResNet-18/CIFAR-10"]] == ["r-only"]


class TestObjectives:
    def test_parse_defaults_to_natural_direction(self):
        objectives = parse_objectives(["latency_us", "speedup"])
        assert objectives[0].maximize is False
        assert objectives[1].maximize is True

    def test_parse_explicit_direction(self):
        (objective,) = parse_objectives(["energy_uj:max"])
        assert objective.maximize is True

    def test_parse_rejects_unknown_name_and_direction(self):
        with pytest.raises(ValueError, match="unknown objective"):
            parse_objectives(["latency"])
        with pytest.raises(ValueError, match="min or max"):
            parse_objectives(["latency_us:up"])
        with pytest.raises(ValueError, match="at least one"):
            parse_objectives([])

    def test_best_point_by_name(self):
        records = [
            make_record("slow", 4.0, 1.0, 1.0, speedup=4.0),
            make_record("fast", 1.0, 1.0, 1.0, speedup=2.0),
        ]
        assert best_point(records, "latency_us").key == "fast"
        assert best_point(records, "speedup").key == "slow"
        with pytest.raises(ValueError):
            best_point([], "latency_us")

    def test_default_objectives_are_min_latency_energy_area(self):
        assert [o.name for o in DEFAULT_OBJECTIVES] == [
            "latency_us",
            "energy_uj",
            "area_mm2",
        ]
        assert not any(o.maximize for o in DEFAULT_OBJECTIVES)
