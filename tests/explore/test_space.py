"""Tests for declarative design spaces (grids, log ranges, random samples)."""

from __future__ import annotations

import pytest

from repro.explore.space import (
    DesignSpace,
    grid_axis,
    log_axis,
    paper_neighborhood_space,
    random_axis,
)


class TestAxes:
    def test_grid_axis_preserves_values(self):
        axis = grid_axis("num_pes", [84, 168, 336])
        assert axis.values == (84, 168, 336)

    def test_rejects_unknown_axis_name(self):
        with pytest.raises(ValueError, match="unknown axis"):
            grid_axis("num_pe", [84])

    def test_rejects_empty_and_duplicate_values(self):
        with pytest.raises(ValueError, match="no values"):
            grid_axis("num_pes", [])
        with pytest.raises(ValueError, match="duplicate"):
            grid_axis("num_pes", [84, 84])

    def test_log_axis_spacing(self):
        axis = log_axis("clock_ghz", 0.1, 10.0, 3)
        assert axis.values[0] == pytest.approx(0.1)
        assert axis.values[1] == pytest.approx(1.0)
        assert axis.values[2] == pytest.approx(10.0)

    def test_log_axis_integer_multiple_of(self):
        axis = log_axis("num_pes", 42, 672, 5, integer=True, multiple_of=3)
        assert all(v % 3 == 0 for v in axis.values)
        assert axis.values[0] == 42
        assert axis.values[-1] == 672
        # Values stay sorted and unique after snapping.
        assert list(axis.values) == sorted(set(axis.values))

    def test_log_axis_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            log_axis("clock_ghz", -1.0, 2.0, 3)
        with pytest.raises(ValueError):
            log_axis("clock_ghz", 4.0, 2.0, 3)

    def test_random_axis_is_seeded(self):
        a = random_axis("pruning_rate", 0.5, 0.99, 4, seed=7)
        b = random_axis("pruning_rate", 0.5, 0.99, 4, seed=7)
        c = random_axis("pruning_rate", 0.5, 0.99, 4, seed=8)
        assert a.values == b.values
        assert a.values != c.values
        assert all(0.5 <= v <= 0.99 for v in a.values)


class TestDesignSpace:
    def test_size_and_point_enumeration(self):
        space = DesignSpace(
            axes=(
                grid_axis("num_pes", [84, 168]),
                grid_axis("pruning_rate", [0.5, 0.9, 0.99]),
            )
        )
        points = list(space.points())
        assert space.size == 6
        assert len(points) == 6
        assert points[0] == {"num_pes": 84, "pruning_rate": 0.5}
        assert points[-1] == {"num_pes": 168, "pruning_rate": 0.99}

    def test_rejects_duplicate_axes(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            DesignSpace(axes=(grid_axis("num_pes", [84]), grid_axis("num_pes", [168])))

    def test_axis_lookup(self):
        space = paper_neighborhood_space()
        assert space.axis("num_pes").values == (84, 168, 336, 672)
        with pytest.raises(KeyError):
            space.axis("missing")

    def test_sample_is_seeded_subset(self):
        space = paper_neighborhood_space()
        sample_a = space.sample(10, seed=3)
        sample_b = space.sample(10, seed=3)
        assert sample_a == sample_b
        assert len(sample_a) == 10
        full = list(space.points())
        assert all(point in full for point in sample_a)
        # Sampling more than the grid returns the whole grid.
        assert space.sample(10_000) == full

    def test_paper_neighborhood_is_48_points(self):
        assert paper_neighborhood_space().size == 48
