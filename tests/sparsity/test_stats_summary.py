"""Tests for sparsity statistics, classification and the Table I summary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparsity.stats import (
    classify,
    density,
    nnz,
    row_densities,
    sparsity,
    tensor_stats,
)
from repro.sparsity.summary import (
    PAPER_TABLE1,
    format_table,
    summarize_data_types,
)


class TestStats:
    def test_density_and_sparsity_complementary(self, rng):
        array = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.3)
        assert density(array) + sparsity(array) == pytest.approx(1.0)

    def test_nnz(self):
        assert nnz(np.array([0.0, 1.0, 2.0, 0.0])) == 2

    def test_density_empty(self):
        assert density(np.array([])) == 0.0

    def test_tensor_stats_fields(self, rng):
        array = np.array([[0.0, -2.0], [1.0, 0.0]])
        stats = tensor_stats(array)
        assert stats.shape == (2, 2)
        assert stats.size == 4
        assert stats.nnz == 2
        assert stats.density == pytest.approx(0.5)
        assert stats.sparsity == pytest.approx(0.5)
        assert stats.mean_abs == pytest.approx(0.75)
        assert stats.max_abs == pytest.approx(2.0)

    def test_row_densities_shape_and_values(self):
        feature_map = np.zeros((2, 3, 4))
        feature_map[0, 0, :2] = 1.0
        densities = row_densities(feature_map)
        assert densities.shape == (6,)
        assert densities[0] == pytest.approx(0.5)
        assert densities[1:].sum() == 0.0

    def test_row_densities_rejects_scalar(self):
        with pytest.raises(ValueError):
            row_densities(np.float64(3.0))

    @settings(max_examples=30, deadline=None)
    @given(
        array=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_property_density_bounds(self, array):
        value = density(array)
        assert 0.0 <= value <= 1.0
        assert nnz(array) == int(round(value * array.size))


class TestClassify:
    def test_dense_and_sparse(self):
        assert classify(1.0) == "dense"
        assert classify(0.8) == "dense"
        assert classify(0.3) == "sparse"

    def test_custom_cutoff(self):
        assert classify(0.6, dense_cutoff=0.5) == "dense"
        assert classify(0.6, dense_cutoff=0.7) == "sparse"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            classify(1.5)


class TestSummary:
    def _summary(self):
        return summarize_data_types(
            weight_density=1.0,
            weight_grad_density=0.98,
            input_density=0.4,
            grad_input_density=0.9,
            output_density=1.0,
            grad_output_density=0.2,
        )

    def test_classifications_match_paper(self):
        rows = self._summary()
        assert all(row.matches_paper for row in rows)

    def test_symbols_cover_all_six_types(self):
        rows = self._summary()
        assert {row.symbol for row in rows} == set(PAPER_TABLE1)

    def test_format_table_contains_all_rows(self):
        text = format_table(self._summary())
        for symbol in PAPER_TABLE1:
            assert symbol in text

    def test_rejects_non_finite_density(self):
        with pytest.raises(ValueError):
            summarize_data_types(1.0, float("nan"), 0.4, 0.9, 1.0, 0.2)
