"""Tests for the per-layer sparsity profiler."""

from __future__ import annotations

import numpy as np

from repro.models.alexnet import build_alexnet
from repro.nn import SGD, Trainer
from repro.pruning import PruningConfig, PruningController
from repro.sparsity import SparsityProfiler, iter_convs
from repro.utils.rng import new_rng


class TestIterConvs:
    def test_finds_all_alexnet_convs_in_order(self):
        model = build_alexnet(width_scale=0.1, rng=new_rng(0))
        names = [conv.name for conv in iter_convs(model)]
        assert names == ["conv1", "conv2", "conv3", "conv4", "conv5"]


class TestSparsityProfiler:
    def _run(self, tiny_dataset, with_pruning: bool):
        model = build_alexnet(
            num_classes=tiny_dataset.num_classes, image_size=8, width_scale=0.1,
            rng=new_rng(1),
        )
        callbacks = []
        if with_pruning:
            callbacks.append(
                PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=1))
            )
        profiler = SparsityProfiler(model)
        callbacks.append(profiler)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01, momentum=0.9), callbacks=callbacks)
        trainer.fit(
            tiny_dataset.images, tiny_dataset.labels, epochs=1, batch_size=32,
            shuffle_rng=np.random.default_rng(0),
        )
        return profiler

    def test_records_every_conv_layer(self, tiny_dataset):
        profiler = self._run(tiny_dataset, with_pruning=False)
        assert len(profiler.layer_names()) == 5
        for name in profiler.layer_names():
            trace = profiler.trace_for(name)
            assert len(trace.input_densities) == 5  # 160 samples / 32 per batch
            assert len(trace.grad_output_densities) == 5
            assert len(trace.grad_input_densities) == 5

    def test_densities_in_unit_interval(self, tiny_dataset):
        profiler = self._run(tiny_dataset, with_pruning=False)
        for stats in profiler.mean_densities().values():
            for value in stats.values():
                assert 0.0 <= value <= 1.0

    def test_first_layer_input_is_dense_image(self, tiny_dataset):
        profiler = self._run(tiny_dataset, with_pruning=False)
        assert profiler.mean_densities()["conv1"]["input"] > 0.95

    def test_inner_layer_inputs_are_sparse_after_relu(self, tiny_dataset):
        profiler = self._run(tiny_dataset, with_pruning=False)
        means = profiler.mean_densities()
        inner = [means[name]["input"] for name in ("conv3", "conv4", "conv5")]
        assert all(value < 0.95 for value in inner)

    def test_pruning_lowers_recorded_grad_input_density(self, tiny_dataset):
        without = self._run(tiny_dataset, with_pruning=False)
        with_pruning = self._run(tiny_dataset, with_pruning=True)
        mean_without = np.mean(
            [v["grad_input"] for v in without.mean_densities().values()]
        )
        mean_with = np.mean(
            [v["grad_input"] for v in with_pruning.mean_densities().values()]
        )
        assert mean_with < mean_without

    def test_trace_for_unknown_layer_raises(self, tiny_dataset):
        profiler = self._run(tiny_dataset, with_pruning=False)
        try:
            profiler.trace_for("missing")
        except KeyError:
            return
        raise AssertionError("expected KeyError")

    def test_detach_removes_hooks(self, tiny_dataset):
        model = build_alexnet(
            num_classes=tiny_dataset.num_classes, image_size=8, width_scale=0.1,
            rng=new_rng(2),
        )
        profiler = SparsityProfiler(model)
        profiler.detach()
        for conv in iter_convs(model):
            assert not conv._forward_hooks
            assert not conv._grad_output_hooks
