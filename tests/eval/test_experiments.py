"""Integration tests for the experiment harnesses (Table I/II, Fig. 8/9, ablations).

These use deliberately tiny :class:`ExperimentScale` settings so the whole
module runs in a couple of minutes; the benchmark suite runs the same
harnesses at their default (larger) scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.ablations import (
    run_energy_sensitivity,
    run_fifo_ablation,
    run_pe_sweep,
    run_pruning_rate_sweep,
)
from repro.eval.common import ExperimentScale, build_reduced_model, synthetic_dataset_for
from repro.eval.fig8 import measure_model_densities, run_fig8
from repro.eval.fig9 import run_fig9
from repro.eval.table1 import run_table1
from repro.eval.table2 import run_table2, train_one_cell

TINY = ExperimentScale(
    num_samples=160, num_classes=4, image_size=8, epochs=2, batch_size=32,
    width_scale=0.1, resnet_blocks=(1,), resnet_width=8, seed=3,
)


class TestCommon:
    def test_scale_presets(self):
        assert ExperimentScale.thorough().num_samples > ExperimentScale.quick().num_samples

    def test_synthetic_dataset_class_counts(self):
        train10, _ = synthetic_dataset_for("CIFAR-10", TINY)
        train100, _ = synthetic_dataset_for("CIFAR-100", TINY)
        assert train100.num_classes > train10.num_classes

    def test_build_reduced_model_families(self):
        alexnet = build_reduced_model("AlexNet", 4, TINY)
        resnet18 = build_reduced_model("ResNet-18", 4, TINY)
        resnet34 = build_reduced_model("ResNet-34", 4, TINY)
        from repro.sparsity import iter_convs

        assert len(list(iter_convs(resnet34))) > len(list(iter_convs(resnet18)))
        assert len(list(iter_convs(alexnet))) == 5

    def test_build_reduced_model_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_reduced_model("LeNet", 4, TINY)


class TestTable1:
    def test_resnet_matches_paper_classification(self):
        result = run_table1("ResNet-18", pruning_rate=0.9, scale=TINY)
        assert result.matches_paper()
        assert result.row("I").classification == "sparse"
        assert result.row("dO").classification == "sparse"
        assert result.row("W").classification == "dense"

    def test_format_contains_all_symbols(self):
        result = run_table1("ResNet-18", pruning_rate=0.9, scale=TINY)
        text = result.format()
        for symbol in ("W", "dW", "dI", "dO"):
            assert symbol in text

    def test_unknown_symbol_lookup(self):
        result = run_table1("ResNet-18", pruning_rate=0.9, scale=TINY)
        with pytest.raises(KeyError):
            result.row("XX")


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(
            models=("ResNet-18",),
            datasets=("CIFAR-10",),
            pruning_rates=(None, 0.9),
            scale=TINY,
        )

    def test_grid_contains_expected_cells(self, table2):
        assert len(table2.cells) == 2
        assert table2.rows() == [("ResNet-18", "CIFAR-10")]

    def test_pruning_reduces_gradient_density(self, table2):
        baseline = table2.baseline("ResNet-18", "CIFAR-10")
        pruned = table2.cell("ResNet-18", "CIFAR-10", 0.9)
        assert pruned.grad_density < baseline.grad_density

    def test_accuracy_not_destroyed_by_pruning(self, table2):
        baseline = table2.baseline("ResNet-18", "CIFAR-10")
        pruned = table2.cell("ResNet-18", "CIFAR-10", 0.9)
        assert pruned.accuracy >= baseline.accuracy - 0.25

    def test_format_table(self, table2):
        text = table2.format()
        assert "ResNet-18" in text
        assert "p=90%" in text

    def test_missing_cell_lookup_raises(self, table2):
        with pytest.raises(KeyError):
            table2.cell("ResNet-18", "CIFAR-10", 0.5)

    def test_train_one_cell_baseline_has_no_pruning(self):
        cell = train_one_cell("ResNet-18", "CIFAR-10", None, TINY)
        assert cell.is_baseline
        assert cell.grad_density > 0.9  # BN network without pruning: dense dO


class TestFig8Fig9:
    @pytest.fixture(scope="class")
    def measured(self):
        return {
            "AlexNet": measure_model_densities("AlexNet", 0.9, TINY),
            "ResNet": measure_model_densities("ResNet-18", 0.9, TINY),
        }

    @pytest.fixture(scope="class")
    def fig8(self, measured):
        return run_fig8(
            workloads=(("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10")),
            scale=TINY,
            measured=measured,
        )

    def test_speedups_above_one(self, fig8):
        assert all(speedup > 1.0 for speedup in fig8.speedups.values())
        assert fig8.mean_speedup > 1.0
        assert fig8.max_speedup >= fig8.mean_speedup

    def test_alexnet_speedup_exceeds_resnet(self, fig8):
        """The paper's Fig. 8 shape: AlexNet benefits more than ResNet."""
        assert fig8.speedups["AlexNet/CIFAR-10"] > fig8.speedups["ResNet-18/CIFAR-10"]

    def test_format_table(self, fig8):
        assert "Average speedup" in fig8.format()

    def test_workload_lookup(self, fig8):
        assert fig8.workload("AlexNet/CIFAR-10").speedup == fig8.speedups["AlexNet/CIFAR-10"]
        with pytest.raises(KeyError):
            fig8.workload("VGG/CIFAR-10")

    def test_fig9_reuses_fig8_results(self, fig8):
        fig9 = run_fig9(fig8_result=fig8)
        assert set(fig9.efficiencies) == set(fig8.speedups)
        assert fig9.mean_efficiency > 1.0

    def test_fig9_energy_shape(self, fig8):
        fig9 = run_fig9(fig8_result=fig8)
        # SRAM dominates baseline energy, and SparseTrain cuts combinational
        # energy by more than SRAM energy — the Fig. 9 qualitative claims.
        for name in fig9.efficiencies:
            assert fig9.baseline_sram_fractions[name] > 0.4
            assert fig9.combinational_reductions[name] > fig9.sram_reductions[name]
            assert fig9.sram_reductions[name] > 0.0

    def test_fig9_format(self, fig8):
        text = run_fig9(fig8_result=fig8).format()
        assert "Energy breakdown" in text

    def test_new_families_end_to_end(self):
        """VGG/MobileNet: reduced training -> measured densities -> simulation."""
        result = run_fig8(
            workloads=(("VGG-16", "CIFAR-10"), ("MobileNetV1", "CIFAR-10")),
            scale=TINY,
        )
        assert set(result.speedups) == {"VGG-16/CIFAR-10", "MobileNetV1/CIFAR-10"}
        assert all(speedup > 1.0 for speedup in result.speedups.values())
        fig9 = run_fig9(fig8_result=result)
        assert all(eff > 1.0 for eff in fig9.efficiencies.values())


class TestAblations:
    def test_fifo_ablation_tracks_target(self):
        points = run_fifo_ablation(fifo_depths=(1, 5), num_batches=20, batch_elements=2048)
        assert len(points) == 2
        for point in points:
            assert point.mean_prediction_error < 0.25
            assert point.mean_density_after == pytest.approx(point.target_density, abs=0.1)

    def test_pruning_rate_sweep_monotone_speedup(self):
        points = run_pruning_rate_sweep(pruning_rates=(0.0, 0.9, 0.99))
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)
        assert all(p.speedup >= 1.0 for p in points)

    def test_pe_sweep_keeps_speedup_in_band(self):
        points = run_pe_sweep(pe_counts=(84, 168))
        assert all(p.speedup > 1.0 for p in points)

    def test_energy_sensitivity_direction(self):
        points = run_energy_sensitivity(scale_factors=(0.5, 4.0), component="sram_pj")
        # Raising the SRAM cost lowers the efficiency gain (SRAM is reduced
        # less than compute), but the gain never drops below 1.
        assert points[0].energy_efficiency >= points[1].energy_efficiency * 0.8
        assert all(p.energy_efficiency > 1.0 for p in points)

    def test_energy_sensitivity_rejects_unknown_component(self):
        with pytest.raises(ValueError):
            run_energy_sensitivity(component="quantum_pj")
