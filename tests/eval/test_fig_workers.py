"""fig8/fig9 ``max_workers`` routing through ``simulate_many``.

Uses fixed hand-written densities (no training) so the tests are fast and
deterministic; serial and worker-pool runs must produce identical numbers.
"""

from __future__ import annotations

from repro.dataflow.counts import LayerDensities
from repro.eval.fig8 import run_fig8
from repro.eval.fig9 import run_fig9
from repro.sim.trace import MeasuredDensities

WORKLOADS = (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10"))

_PROFILES = (
    dict(input_density=1.0, grad_output_density=0.3, mask_density=0.55,
         grad_input_density=0.5, output_density=0.55),
    dict(input_density=0.55, grad_output_density=0.2, mask_density=0.5,
         grad_input_density=0.4, output_density=0.5),
)


def _fixed_measured() -> dict[str, MeasuredDensities]:
    measured = {}
    for family in ("AlexNet", "ResNet"):
        names = tuple(f"{family}.layer{i}" for i in range(len(_PROFILES)))
        measured[family] = MeasuredDensities(
            layer_names=names,
            densities={
                name: LayerDensities(**profile)
                for name, profile in zip(names, _PROFILES)
            },
        )
    return measured


class TestWorkersRouting:
    def test_serial_and_parallel_fig8_agree(self):
        measured = _fixed_measured()
        serial = run_fig8(workloads=WORKLOADS, measured=measured)
        parallel = run_fig8(workloads=WORKLOADS, measured=measured, max_workers=2)
        assert serial.speedups == parallel.speedups
        assert [w.workload_name for w in serial.workloads] == [
            w.workload_name for w in parallel.workloads
        ]

    def test_fig9_forwards_workers(self):
        measured = _fixed_measured()
        serial = run_fig9(workloads=WORKLOADS, measured=measured)
        parallel = run_fig9(workloads=WORKLOADS, measured=measured, max_workers=2)
        assert serial.efficiencies == parallel.efficiencies
