"""Dedicated coverage for the E-A2 ablation sweep functions.

``run_pruning_rate_sweep`` / ``run_pe_sweep`` / ``run_energy_sensitivity``
were previously exercised only through the benchmark suite; these tests pin
their contracts (point counts, parameter echoes, monotonicity and routing
through the exploration engine) at tier-1 speed.
"""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    SweepPoint,
    run_energy_sensitivity,
    run_pe_sweep,
    run_pruning_rate_sweep,
)
from repro.explore import engine as engine_module


class TestPruningRateSweep:
    def test_one_point_per_rate_with_parameter_echo(self):
        rates = (0.0, 0.7, 0.9)
        points = run_pruning_rate_sweep(pruning_rates=rates)
        assert len(points) == len(rates)
        assert tuple(p.parameter for p in points) == rates
        assert all(isinstance(p, SweepPoint) for p in points)

    def test_speedup_and_efficiency_grow_with_rate(self):
        points = run_pruning_rate_sweep(pruning_rates=(0.0, 0.5, 0.9, 0.99))
        speedups = [p.speedup for p in points]
        efficiencies = [p.energy_efficiency for p in points]
        assert speedups == sorted(speedups)
        assert efficiencies == sorted(efficiencies)
        assert speedups[0] > 1.0  # natural sparsity alone already helps

    def test_repeated_rates_keep_one_correctly_labelled_point_each(self):
        points = run_pruning_rate_sweep(pruning_rates=(0.5, 0.5, 0.9))
        assert tuple(p.parameter for p in points) == (0.5, 0.5, 0.9)
        assert points[0] == points[1]
        assert points[2].speedup > points[0].speedup

    def test_accepts_normalized_model_names(self):
        a = run_pruning_rate_sweep(pruning_rates=(0.9,), model="resnet18",
                                   dataset="cifar10")
        b = run_pruning_rate_sweep(pruning_rates=(0.9,), model="ResNet-18",
                                   dataset="CIFAR-10")
        assert a == b


class TestPeSweep:
    def test_one_point_per_count_with_parameter_echo(self):
        counts = (84, 168, 336)
        points = run_pe_sweep(pe_counts=counts)
        assert tuple(int(p.parameter) for p in points) == counts

    def test_speedup_stays_in_band(self):
        points = run_pe_sweep(pe_counts=(42, 84, 168, 336))
        speedups = [p.speedup for p in points]
        assert all(s > 1.5 for s in speedups)
        assert max(speedups) / min(speedups) < 2.0

    def test_rejects_pe_count_not_multiple_of_group(self):
        with pytest.raises(ValueError):
            run_pe_sweep(pe_counts=(85,))


class TestEnergySensitivity:
    def test_one_point_per_factor_with_parameter_echo(self):
        factors = (0.5, 1.0, 2.0)
        points = run_energy_sensitivity(scale_factors=factors, component="sram_pj")
        assert tuple(p.parameter for p in points) == factors

    def test_unscaled_factor_matches_default_model(self):
        (scaled,) = run_energy_sensitivity(scale_factors=(1.0,), component="sram_pj")
        (default,) = run_pruning_rate_sweep(pruning_rates=(0.9,))
        assert scaled.energy_efficiency == pytest.approx(default.energy_efficiency)
        assert scaled.speedup == pytest.approx(default.speedup)

    def test_conclusion_survives_constant_scaling(self):
        for component in ("sram_pj", "dram_pj", "mac_pj", "reg_pj"):
            points = run_energy_sensitivity(
                scale_factors=(0.5, 4.0), component=component
            )
            assert all(p.energy_efficiency > 1.0 for p in points)

    def test_rejects_unknown_component(self):
        with pytest.raises(ValueError, match="unknown energy-model component"):
            run_energy_sensitivity(component="quantum_pj")


class TestEngineRouting:
    def test_sweeps_run_through_the_exploration_engine(self, monkeypatch):
        """The ablation harnesses share the engine's evaluation path."""
        calls = []
        real = engine_module.evaluate_point

        def counting(point):
            calls.append(point)
            return real(point)

        monkeypatch.setattr(engine_module, "evaluate_point", counting)
        run_pe_sweep(pe_counts=(84, 168))
        assert len(calls) == 2
        assert {p.sparse_config().num_pes for p in calls} == {84, 168}
