"""Golden regression: tiny-scale Fig. 8 / Fig. 9 headline numbers are pinned.

The fig8/fig9 pipeline is run with *fixed, hand-written* per-family densities
(no reduced-model training, so the numbers are pure closed-form arithmetic
and bit-stable across platforms) over one CIFAR workload per model family.
The resulting speedup, energy-efficiency and latency figures are compared
against the frozen fixture ``golden_headline.json`` — a cost-model or
compiler refactor that silently changes any headline number fails here.

Regenerate the fixture after an *intentional* model change with:

    PYTHONPATH=src python tests/eval/test_golden_regression.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dataflow.counts import LayerDensities
from repro.eval.fig8 import run_fig8
from repro.eval.fig9 import run_fig9
from repro.sim.trace import MeasuredDensities

GOLDEN_PATH = Path(__file__).parent / "golden_headline.json"

GOLDEN_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("ResNet-18", "CIFAR-10"),
    ("VGG-16", "CIFAR-10"),
    ("MobileNetV1", "CIFAR-10"),
)

# Hand-written shallow/middle/deep densities per family: plausible magnitudes
# (activations ~half dense, pruned gradients sparse, deeper layers sparser),
# chosen once and frozen — their exact values only matter in that they are
# stable inputs to the pipeline under test.
_FAMILY_PROFILES: dict[str, tuple[dict, dict, dict]] = {
    family: (
        dict(input_density=1.00, grad_output_density=0.30, mask_density=0.55,
             grad_input_density=0.50, output_density=0.55),
        dict(input_density=0.55, grad_output_density=0.20, mask_density=0.50,
             grad_input_density=0.40, output_density=0.50),
        dict(input_density=0.45, grad_output_density=0.12, mask_density=0.45,
             grad_input_density=0.30, output_density=0.45),
    )
    for family in ("AlexNet", "ResNet", "VGG", "MobileNet")
}


def fixed_measured_densities() -> dict[str, MeasuredDensities]:
    """Deterministic stand-in for the measured per-family densities."""
    measured = {}
    for family, profiles in _FAMILY_PROFILES.items():
        names = tuple(f"{family.lower()}.layer{i}" for i in range(len(profiles)))
        measured[family] = MeasuredDensities(
            layer_names=names,
            densities={
                name: LayerDensities(**profile)
                for name, profile in zip(names, profiles)
            },
        )
    return measured


def compute_headline() -> dict[str, dict[str, float]]:
    """The tiny-scale fig8+fig9 headline numbers this fixture pins."""
    fig8 = run_fig8(workloads=GOLDEN_WORKLOADS, measured=fixed_measured_densities())
    fig9 = run_fig9(workloads=GOLDEN_WORKLOADS, fig8_result=fig8)
    headline: dict[str, dict[str, float]] = {}
    for workload in fig8.workloads:
        headline[workload.workload_name] = {
            "speedup": float(workload.speedup),
            "energy_efficiency": float(workload.energy_efficiency),
            "latency_us": float(workload.comparison.sparsetrain.latency_us),
            "baseline_latency_us": float(workload.comparison.baseline.latency_us),
            "energy_uj": float(workload.comparison.sparsetrain.energy_uj),
        }
    headline["__summary__"] = {
        "mean_speedup": float(fig8.mean_speedup),
        "max_speedup": float(fig8.max_speedup),
        "mean_efficiency": float(fig9.mean_efficiency),
    }
    return headline


class TestGoldenHeadline:
    @pytest.fixture(scope="class")
    def headline(self):
        return compute_headline()

    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_PATH.exists(), (
            f"{GOLDEN_PATH} missing; regenerate with "
            "`PYTHONPATH=src python tests/eval/test_golden_regression.py`"
        )
        return json.loads(GOLDEN_PATH.read_text())

    def test_workload_set_is_frozen(self, headline, golden):
        assert sorted(headline) == sorted(golden)

    @pytest.mark.parametrize(
        "workload", [f"{m}/{d}" for m, d in GOLDEN_WORKLOADS] + ["__summary__"]
    )
    def test_headline_numbers_pinned(self, headline, golden, workload):
        assert workload in golden, f"fixture missing {workload}"
        for metric, frozen_value in golden[workload].items():
            assert headline[workload][metric] == pytest.approx(
                frozen_value, rel=1e-6
            ), (
                f"{workload} {metric} drifted from the golden fixture; if the "
                "cost-model change is intentional, regenerate the fixture"
            )

    def test_sparsetrain_always_wins_on_golden_grid(self, headline):
        for workload, metrics in headline.items():
            if workload == "__summary__":
                continue
            assert metrics["speedup"] > 1.0
            assert metrics["energy_efficiency"] > 1.0


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(compute_headline(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
