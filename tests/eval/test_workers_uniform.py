"""``--workers N`` must route through RunOptions for *every* experiment.

Historically only fig8/fig9 consumed ``RunOptions.max_workers``; the table2
grid trained serially and the ablation sweeps pinned the engine to serial no
matter what the caller asked for.  These tests pin the uniform contract:
parallel and serial runs of the same request are identical (every unit of
work seeds its own RNG), and the worker count reaches the fan-out seam.
"""

from __future__ import annotations

from repro.api import ExperimentRequest, RunOptions, run_experiment
from repro.eval.common import ExperimentScale

SMOKE = ExperimentScale.preset("smoke")


def _run(experiment: str, params: dict, max_workers: int | None):
    request = ExperimentRequest(
        experiment=experiment, scale=SMOKE, params=params
    )
    return run_experiment(
        request,
        options=RunOptions(max_workers=max_workers, use_cache=False),
    )


class TestTable2Workers:
    PARAMS = {
        "models": ["AlexNet"],
        "datasets": ["CIFAR-10"],
        "pruning_rates": [None, 0.9],
    }

    def test_serial_and_parallel_grids_agree(self):
        serial = _run("table2", self.PARAMS, max_workers=None)
        parallel = _run("table2", self.PARAMS, max_workers=2)
        assert serial.payload["cells"] == parallel.payload["cells"]
        assert len(serial.payload["cells"]) == 2


class TestAblationWorkers:
    PARAMS = {"pruning_rates": [0.5, 0.9]}

    def test_serial_and_parallel_sweeps_agree(self):
        serial = _run("ablate-rate", self.PARAMS, max_workers=None)
        parallel = _run("ablate-rate", self.PARAMS, max_workers=2)
        assert serial.payload == parallel.payload
        assert len(serial.payload["points"]) == 2

    def test_workers_reach_the_engine(self, monkeypatch):
        """The run options' worker count must configure the engine."""
        import repro.eval.ablations as ablations

        seen = {}
        real_engine = ablations.ExplorationEngine

        class SpyEngine(real_engine):
            def __init__(self, *args, **kwargs):
                seen.update(kwargs)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(ablations, "ExplorationEngine", SpyEngine)
        _run("ablate-rate", self.PARAMS, max_workers=3)
        assert seen.get("max_workers") == 3
        assert seen.get("parallel") is True

    def test_serial_default_stays_serial(self, monkeypatch):
        import repro.eval.ablations as ablations

        seen = {}
        real_engine = ablations.ExplorationEngine

        class SpyEngine(real_engine):
            def __init__(self, *args, **kwargs):
                seen.update(kwargs)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(ablations, "ExplorationEngine", SpyEngine)
        _run("ablate-rate", self.PARAMS, max_workers=None)
        assert seen.get("parallel") is False
