"""Tests for the on-disk measured-density cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.counts import LayerDensities
from repro.eval.common import ExperimentScale
from repro.eval.density_cache import (
    density_cache_key,
    deserialize_measured,
    load_cached_densities,
    serialize_measured,
    store_cached_densities,
)
from repro.eval.fig8 import measure_model_densities
from repro.explore.cache import ResultCache
from repro.sim.trace import MeasuredDensities

TINY = ExperimentScale(
    num_samples=96, num_classes=4, image_size=8, epochs=1, batch_size=32,
    width_scale=0.1, resnet_blocks=(1,), resnet_width=8, seed=5,
)


def _measured_fixture() -> MeasuredDensities:
    names = ("conv1", "conv2")
    return MeasuredDensities(
        layer_names=names,
        densities={
            "conv1": LayerDensities(1.0, 0.3, 0.55, 0.5, 0.6),
            "conv2": LayerDensities(0.6, 0.2, 0.5, 0.4, 0.5),
        },
    )


class TestSerialization:
    def test_round_trip(self):
        measured = _measured_fixture()
        restored = deserialize_measured(serialize_measured(measured))
        assert restored.layer_names == measured.layer_names
        assert restored.densities == measured.densities

    def test_corrupted_record_warns_and_falls_back_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        key = density_cache_key("AlexNet", 0.9, TINY)
        cache.put(key, {"not": "a measurement"})
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            assert load_cached_densities(cache, "AlexNet", 0.9, TINY) is None

    def test_torn_write_skips_line_and_warns(self, tmp_path):
        """A torn (truncated) JSONL write loses one entry, not the cache."""
        path = tmp_path / "densities.jsonl"
        cache = ResultCache(path)
        key = density_cache_key("AlexNet", 0.9, TINY)
        store_cached_densities(cache, "AlexNet", 0.9, TINY, _measured_fixture())
        intact = path.read_text(encoding="utf-8")
        # Simulate a writer killed mid-append: half a record, no newline.
        path.write_text(intact + intact[: len(intact) // 2], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt/truncated"):
            reloaded = ResultCache(path)
        restored = load_cached_densities(reloaded, "AlexNet", 0.9, TINY)
        assert restored is not None
        assert restored.densities == _measured_fixture().densities
        assert reloaded.get(key) is not None


class TestKeying:
    def test_key_is_stable_and_sensitive(self):
        base = density_cache_key("AlexNet", 0.9, TINY)
        assert base == density_cache_key("AlexNet", 0.9, TINY)
        assert base != density_cache_key("ResNet-18", 0.9, TINY)
        assert base != density_cache_key("AlexNet", 0.5, TINY)
        assert base != density_cache_key(
            "AlexNet", 0.9, ExperimentScale(num_samples=TINY.num_samples + 1)
        )


class TestStoreAndLoad:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        measured = _measured_fixture()
        store_cached_densities(cache, "AlexNet", 0.9, TINY, measured)
        restored = load_cached_densities(cache, "AlexNet", 0.9, TINY)
        assert restored is not None
        assert restored.densities == measured.densities
        # Survives a reload from disk.
        reloaded = ResultCache(tmp_path / "densities.jsonl")
        assert load_cached_densities(reloaded, "AlexNet", 0.9, TINY) is not None

    def test_disabled_cache_is_noop(self):
        store_cached_densities(None, "AlexNet", 0.9, TINY, _measured_fixture())
        assert load_cached_densities(None, "AlexNet", 0.9, TINY) is None


class TestMeasureIntegration:
    def test_second_measurement_hits_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        first = measure_model_densities("AlexNet", 0.9, TINY, cache=cache)
        assert len(cache) == 1
        second = measure_model_densities("AlexNet", 0.9, TINY, cache=cache)
        assert second.layer_names == first.layer_names
        for name in first.layer_names:
            a, b = first.densities[name], second.densities[name]
            assert a == b or np.allclose(
                [a.input_density, a.grad_output_density, a.mask_density,
                 a.grad_input_density, a.output_density],
                [b.input_density, b.grad_output_density, b.mask_density,
                 b.grad_input_density, b.output_density],
            )
        assert len(cache) == 1  # no second entry appended

    def test_different_scale_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        measure_model_densities("AlexNet", 0.9, TINY, cache=cache)
        other = ExperimentScale(
            num_samples=96, num_classes=4, image_size=8, epochs=2, batch_size=32,
            width_scale=0.1, resnet_blocks=(1,), resnet_width=8, seed=5,
        )
        measure_model_densities("AlexNet", 0.9, other, cache=cache)
        assert len(cache) == 2
