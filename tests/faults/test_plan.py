"""FaultPlan/FaultRule: validation, matching, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.faults import ACTIONS, FaultPlan, FaultRule, InjectedFault


class TestRuleValidation:
    def test_defaults_are_a_single_error_firing(self):
        rule = FaultRule(site="store.commit")
        assert rule.action == "error"
        assert rule.times == 1
        assert rule.after == 0
        assert rule.chance == 1.0

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="store.commit", action="explode")

    def test_rejects_empty_site(self):
        with pytest.raises(ValueError, match="non-empty site"):
            FaultRule(site="")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"after": -1},
            {"times": 0},
            {"chance": 1.5},
            {"chance": -0.1},
            {"duration": -2.0},
        ],
    )
    def test_rejects_out_of_range_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(site="store.commit", **kwargs)

    def test_times_none_means_unlimited(self):
        rule = FaultRule(site="worker.claim", action="crash", times=None)
        assert rule.times is None

    def test_every_listed_action_constructs(self):
        for action in ACTIONS:
            FaultRule(site="x", action=action)


class TestRuleMatching:
    def test_empty_match_hits_everything(self):
        rule = FaultRule(site="store.commit")
        assert rule.matches({})
        assert rule.matches({"op": "submit", "job": "abc"})

    def test_subset_equality(self):
        rule = FaultRule(site="store.commit", match={"op": "record_stage"})
        assert rule.matches({"op": "record_stage", "job": "abc"})
        assert not rule.matches({"op": "submit", "job": "abc"})

    def test_absent_context_key_never_matches(self):
        """No wildcard-by-omission: a match key missing from ctx is a miss."""
        rule = FaultRule(site="store.commit", match={"job": "abc"})
        assert not rule.matches({"op": "submit"})

    def test_match_accepts_mapping_and_pairs(self):
        by_dict = FaultRule(site="s", match={"a": 1, "b": 2})
        by_pairs = FaultRule(site="s", match=(("b", 2), ("a", 1)))
        assert by_dict.match == by_pairs.match  # normalised + sorted


class TestSerialization:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=7,
            name="drill",
            rules=(
                FaultRule(
                    site="worker.claim",
                    action="crash",
                    match={"job": "abc"},
                    times=None,
                ),
                FaultRule(
                    site="stage.boundary",
                    action="hang",
                    duration=2.5,
                    after=1,
                ),
                FaultRule(
                    site="store.commit",
                    chance=0.5,
                    message="refused",
                ),
            ),
        )

    def test_json_round_trip_is_lossless(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sites_are_sorted_and_deduped(self):
        assert self._plan().sites == (
            "stage.boundary",
            "store.commit",
            "worker.claim",
        )

    def test_rules_must_be_fault_rules(self):
        with pytest.raises(TypeError, match="rules must be FaultRule"):
            FaultPlan(rules=({"site": "store.commit"},))


class TestInjectedFault:
    def test_carries_site_and_message(self):
        exc = InjectedFault("store.commit", "refused")
        assert exc.site == "store.commit"
        assert "store.commit" in str(exc)
        assert "refused" in str(exc)
