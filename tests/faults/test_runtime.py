"""Fault runtime: install/clear, firing gates, env loading, reporting."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.faults.runtime as runtime
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    fault_report,
    install_plan,
)

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _clean_runtime():
    clear_plan()
    yield
    clear_plan()


def _plan(*rules: FaultRule, seed: int = 0) -> FaultPlan:
    return FaultPlan(seed=seed, rules=rules)


class TestNoPlan:
    def test_fault_point_is_a_noop_without_a_plan(self):
        fault_point("store.commit", op="submit")  # must not raise

    def test_active_plan_and_report_are_none(self):
        assert active_plan() is None
        assert fault_report() is None


class TestFiringGates:
    def test_error_rule_raises_injected_fault(self):
        install_plan(_plan(FaultRule(site="store.commit", message="no")))
        with pytest.raises(InjectedFault, match="store.commit"):
            fault_point("store.commit")

    def test_match_filters_by_context(self):
        install_plan(
            _plan(FaultRule(site="store.commit", match={"op": "claim"}))
        )
        fault_point("store.commit", op="submit")  # miss
        with pytest.raises(InjectedFault):
            fault_point("store.commit", op="claim")

    def test_times_bounds_total_firings(self):
        install_plan(_plan(FaultRule(site="s", times=2)))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("s")
        fault_point("s")  # exhausted: silent

    def test_after_skips_leading_hits(self):
        install_plan(_plan(FaultRule(site="s", after=2)))
        fault_point("s")
        fault_point("s")
        with pytest.raises(InjectedFault):
            fault_point("s")

    def test_hang_sleeps_then_continues(self):
        install_plan(_plan(FaultRule(site="s", action="hang", duration=0.0)))
        fault_point("s")  # returns instead of raising

    def test_first_matching_rule_wins(self):
        install_plan(
            _plan(
                FaultRule(site="s", match={"op": "a"}, message="first"),
                FaultRule(site="s", message="second"),
            )
        )
        with pytest.raises(InjectedFault, match="first"):
            fault_point("s", op="a")
        with pytest.raises(InjectedFault, match="second"):
            fault_point("s", op="b")

    def test_chance_draws_are_seeded_and_deterministic(self):
        """Same plan, same hit sequence => identical firing decisions."""

        def firings(seed: int) -> list[bool]:
            install_plan(
                _plan(
                    FaultRule(site="s", chance=0.5, times=None), seed=seed
                )
            )
            out = []
            for _ in range(32):
                try:
                    fault_point("s")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first, second = firings(7), firings(7)
        assert first == second
        assert True in first and False in first  # 0.5 actually gates
        assert firings(8) != first  # and the seed matters


class TestReporting:
    def test_report_counts_hits_and_firings(self):
        install_plan(
            _plan(FaultRule(site="s", match={"op": "x"}, times=1))
        )
        fault_point("s", op="y")  # miss: no hit counted (match failed)
        with pytest.raises(InjectedFault):
            fault_point("s", op="x")
        fault_point("s", op="x")  # hit but exhausted
        report = fault_report()
        (rule,) = report["rules"]
        assert rule["hits"] == 2
        assert rule["fired"] == 1

    def test_install_replaces_and_clear_deactivates(self):
        install_plan(_plan(FaultRule(site="s")))
        assert active_plan() is not None
        clear_plan()
        assert active_plan() is None
        fault_point("s")


class TestEnvironmentLoading:
    def test_subprocess_loads_plan_from_env(self):
        """The fleet seam: REPRO_FAULTS JSON activates lazily in a child."""
        plan = _plan(FaultRule(site="s", message="from-env"))
        script = (
            "from repro.faults import fault_point, InjectedFault\n"
            "try:\n"
            "    fault_point('s')\n"
            "    print('silent')\n"
            "except InjectedFault as exc:\n"
            "    print('fired:' + str(exc))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(SRC),
                ENV_VAR: plan.to_json(),
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fired:injected fault at 's': from-env"

    def test_malformed_env_plan_warns_and_stays_inactive(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        monkeypatch.setattr(runtime, "_active", None)
        monkeypatch.setattr(runtime, "_env_checked", False)
        with pytest.warns(RuntimeWarning, match="malformed"):
            fault_point("s")
        fault_point("s")  # checked once, then permanently silent

    def test_crash_action_exits_with_conventional_code(self):
        plan = _plan(FaultRule(site="s", action="crash"))
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.faults import fault_point; fault_point('s')",
            ],
            env={
                "PYTHONPATH": str(SRC),
                ENV_VAR: plan.to_json(),
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == runtime.CRASH_EXIT_CODE

    def test_env_plan_round_trips_through_json(self):
        plan = _plan(
            FaultRule(site="worker.claim", action="crash", times=None)
        )
        assert FaultPlan.from_json(
            json.dumps(json.loads(plan.to_json()))
        ) == plan
