"""Tests for the ``repro bench`` harness and its CLI wiring."""

from __future__ import annotations

import json

import pytest

from pathlib import Path

from repro.bench import SMOKE_SCALE, BenchResult, _write_atomic, run_bench
from repro.cli import main
from repro.explore.cache import ResultCache


@pytest.fixture(scope="module")
def smoke_result(tmp_path_factory):
    """One shared smoke bench run (trains a tiny model once per module)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_repro.json"
    result = run_bench(smoke=True, out=out, density_cache=None)
    return result, out


class TestRunBench:
    def test_stages_present(self, smoke_result):
        result, _ = smoke_result
        assert set(result.stages) == {"train", "compile", "simulate", "rowop_validate"}
        for stage in result.stages.values():
            assert stage["seconds"] >= 0.0

    def test_rowop_stage_is_exact_and_faster(self, smoke_result):
        result, _ = smoke_result
        rowop = result.stages["rowop_validate"]
        assert rowop["exact"] is True
        assert rowop["ops"] > 0
        # The acceptance bar (>= 10x) is asserted on the full-scale bench in
        # CI-adjacent runs; the smoke layer is tiny, so only require a clear
        # win here to keep the test robust on loaded machines.
        assert rowop["speedup"] > 2.0

    def test_payload_written(self, smoke_result):
        result, out = smoke_result
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["smoke"] is True
        assert payload["rowop_speedup"] == result.rowop_speedup
        assert set(payload["stages"]) == set(result.stages)

    def test_format_mentions_speedup(self, smoke_result):
        result, _ = smoke_result
        text = result.format()
        assert "rowop_validate" in text and "speedup" in text

    def test_out_none_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = run_bench(smoke=True, out=None, density_cache=None)
        assert isinstance(result, BenchResult)
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_density_cache_hit_recorded(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        first = run_bench(smoke=True, out=None, density_cache=cache)
        assert first.stages["train"]["cache_hit"] is False
        second = run_bench(smoke=True, out=None, density_cache=cache)
        assert second.stages["train"]["cache_hit"] is True
        # The cached re-run skips retraining entirely.
        assert second.stages["train"]["seconds"] <= first.stages["train"]["seconds"]


class TestMetricsSnapshot:
    def test_payload_carries_stage_quantiles(self, smoke_result):
        """BENCH_repro.json includes the p50/p95 telemetry snapshot."""
        _, out = smoke_result
        payload = json.loads(out.read_text())
        stage_seconds = payload["metrics"]["stage_seconds"]
        assert {"train", "compile", "simulate"} <= set(stage_seconds)
        for info in stage_seconds.values():
            assert info["count"] >= 1
            assert info["p50"] is not None and info["p95"] is not None

    def test_no_temp_files_left_behind(self, smoke_result):
        _, out = smoke_result
        assert not list(out.parent.glob("*.tmp"))


class TestAtomicWrite:
    def test_replaces_existing_file_atomically(self, tmp_path):
        out = tmp_path / "BENCH_repro.json"
        out.write_text('{"stale": true}')
        _write_atomic(out, {"fresh": True})
        assert json.loads(out.read_text()) == {"fresh": True}
        assert not list(tmp_path.glob("*.tmp"))

    def test_nonregular_target_written_directly(self):
        """CI passes --out /dev/null; there is nothing to rename onto it."""
        _write_atomic(Path("/dev/null"), {"discard": True})  # must not raise

    def test_failed_serialization_leaves_target_intact(self, tmp_path):
        out = tmp_path / "BENCH_repro.json"
        out.write_text('{"original": true}')
        with pytest.raises(TypeError):
            _write_atomic(out, {"bad": object()})
        assert json.loads(out.read_text()) == {"original": True}
        assert not list(tmp_path.glob("*.tmp"))


class TestBenchCLI:
    def test_cli_smoke(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--smoke", "--out", str(out),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "rowop_validate" in captured
        assert json.loads(out.read_text())["smoke"] is True

    def test_smoke_scale_is_small(self):
        assert SMOKE_SCALE.num_samples <= 128 and SMOKE_SCALE.epochs == 1
