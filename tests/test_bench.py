"""Tests for the ``repro bench`` harness and its CLI wiring."""

from __future__ import annotations

import json

import pytest

from pathlib import Path

from repro.bench import (
    SMOKE_SCALE,
    BenchResult,
    _write_atomic,
    check_regression,
    run_bench,
)
from repro.cli import main
from repro.explore.cache import ResultCache


@pytest.fixture(scope="module")
def smoke_result(tmp_path_factory):
    """One shared smoke bench run (trains a tiny model once per module)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_repro.json"
    result = run_bench(smoke=True, out=out, density_cache=None)
    return result, out


class TestRunBench:
    def test_stages_present(self, smoke_result):
        result, _ = smoke_result
        assert set(result.stages) == {"train", "compile", "simulate", "rowop_validate"}
        for stage in result.stages.values():
            assert stage["seconds"] >= 0.0

    def test_rowop_stage_is_exact_and_faster(self, smoke_result):
        result, _ = smoke_result
        rowop = result.stages["rowop_validate"]
        assert rowop["exact"] is True
        assert rowop["ops"] > 0
        # The acceptance bar (>= 10x) is asserted on the full-scale bench in
        # CI-adjacent runs; the smoke layer is tiny, so only require a clear
        # win here to keep the test robust on loaded machines.
        assert rowop["speedup"] > 2.0

    def test_payload_written(self, smoke_result):
        result, out = smoke_result
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["smoke"] is True
        assert payload["rowop_speedup"] == result.rowop_speedup
        assert set(payload["stages"]) == set(result.stages)

    def test_format_mentions_speedup(self, smoke_result):
        result, _ = smoke_result
        text = result.format()
        assert "rowop_validate" in text and "speedup" in text

    def test_out_none_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = run_bench(smoke=True, out=None, density_cache=None)
        assert isinstance(result, BenchResult)
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_density_cache_hit_recorded(self, tmp_path):
        cache = ResultCache(tmp_path / "densities.jsonl")
        first = run_bench(smoke=True, out=None, density_cache=cache)
        assert first.stages["train"]["cache_hit"] is False
        second = run_bench(smoke=True, out=None, density_cache=cache)
        assert second.stages["train"]["cache_hit"] is True
        # The cached re-run skips retraining entirely.
        assert second.stages["train"]["seconds"] <= first.stages["train"]["seconds"]


class TestMetricsSnapshot:
    def test_payload_carries_stage_quantiles(self, smoke_result):
        """BENCH_repro.json includes the p50/p95 telemetry snapshot."""
        _, out = smoke_result
        payload = json.loads(out.read_text())
        stage_seconds = payload["metrics"]["stage_seconds"]
        assert {"train", "compile", "simulate"} <= set(stage_seconds)
        for info in stage_seconds.values():
            assert info["count"] >= 1
            assert info["p50"] is not None and info["p95"] is not None

    def test_no_temp_files_left_behind(self, smoke_result):
        _, out = smoke_result
        assert not list(out.parent.glob("*.tmp"))


class TestAtomicWrite:
    def test_replaces_existing_file_atomically(self, tmp_path):
        out = tmp_path / "BENCH_repro.json"
        out.write_text('{"stale": true}')
        _write_atomic(out, {"fresh": True})
        assert json.loads(out.read_text()) == {"fresh": True}
        assert not list(tmp_path.glob("*.tmp"))

    def test_nonregular_target_written_directly(self):
        """CI passes --out /dev/null; there is nothing to rename onto it."""
        _write_atomic(Path("/dev/null"), {"discard": True})  # must not raise

    def test_failed_serialization_leaves_target_intact(self, tmp_path):
        out = tmp_path / "BENCH_repro.json"
        out.write_text('{"original": true}')
        with pytest.raises(TypeError):
            _write_atomic(out, {"bad": object()})
        assert json.loads(out.read_text()) == {"original": True}
        assert not list(tmp_path.glob("*.tmp"))


def _payload(
    speedup: float,
    stages: dict[str, float] | None = None,
    smoke: bool = False,
) -> dict:
    """A minimal bench payload with the given rowop speedup and stage p95s."""
    stage_seconds = {
        stage: {"count": 1, "p50": p95, "p95": p95}
        for stage, p95 in (stages or {}).items()
    }
    return {
        "schema": 1,
        "smoke": smoke,
        "rowop_speedup": speedup,
        "metrics": {"stage_seconds": stage_seconds},
    }


class TestCheckRegression:
    def test_within_tolerance_passes(self):
        violations, checked = check_regression(
            _payload(10.0, {"train": 1.0}),
            _payload(11.0, {"train": 0.9}),
        )
        assert violations == []
        assert any("rowop_speedup" in note for note in checked)
        assert any("stage train" in note for note in checked)

    def test_speedup_regression_detected(self):
        violations, _ = check_regression(_payload(7.9), _payload(10.0))
        assert len(violations) == 1
        assert "rowop_speedup regressed" in violations[0]
        # Exactly at the floor (10.0 * 0.8) is still a pass.
        assert check_regression(_payload(8.0), _payload(10.0))[0] == []

    def test_stage_p95_regression_detected(self):
        violations, _ = check_regression(
            _payload(10.0, {"train": 1.3}), _payload(10.0, {"train": 1.0})
        )
        assert len(violations) == 1
        assert "stage train p95 regressed" in violations[0]

    def test_noise_floor_stages_are_skipped(self):
        """A 10x blowup of a 1ms stage is noise, not a regression."""
        violations, checked = check_regression(
            _payload(10.0, {"compile": 0.010}),
            _payload(10.0, {"compile": 0.001}),
        )
        assert violations == []
        assert any("noise floor" in note for note in checked)

    def test_stage_missing_from_current_is_skipped(self):
        violations, checked = check_regression(
            _payload(10.0, {}), _payload(10.0, {"train": 1.0})
        )
        assert violations == []
        assert any("p95 missing" in note for note in checked)

    def test_scale_mismatch_raises(self):
        with pytest.raises(ValueError, match="scale mismatch"):
            check_regression(_payload(10.0, smoke=True), _payload(10.0))

    def test_tolerance_is_configurable(self):
        current, baseline = _payload(9.5), _payload(10.0)
        assert check_regression(current, baseline, tolerance=0.1)[0] == []
        assert check_regression(current, baseline, tolerance=0.01)[0] != []


class TestBenchCheckCLI:
    def test_missing_baseline_exits_2(self, tmp_path):
        code = main(
            [
                "bench", "--smoke", "--check",
                "--baseline", str(tmp_path / "absent.json"),
                "--out", str(tmp_path / "bench.json"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 2

    def test_scale_mismatch_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "full.json"
        baseline.write_text(json.dumps(_payload(10.0, smoke=False)))
        code = main(
            [
                "bench", "--smoke", "--check", "--baseline", str(baseline),
                "--out", str(tmp_path / "bench.json"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 2
        assert "scale mismatch" in capsys.readouterr().err

    def test_regression_exits_1_and_clean_run_exits_0(self, tmp_path, capsys):
        # A deliberately unbeatable baseline: the smoke run cannot reach a
        # 1000x speedup, so the check must fail...
        impossible = tmp_path / "impossible.json"
        impossible.write_text(
            json.dumps(_payload(1000.0, {"train": 100.0}, smoke=True))
        )
        out = tmp_path / "bench.json"
        args = ["--out", str(out), "--cache-dir", str(tmp_path / "cache")]
        code = main(["bench", "--smoke", "--check", "--baseline",
                     str(impossible)] + args)
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err
        # ...while a generous baseline passes (exit 0) using the same run
        # shape; the payload just written is a valid baseline format.
        generous = tmp_path / "generous.json"
        generous.write_text(
            json.dumps(_payload(1.0, {"train": 1000.0}, smoke=True))
        )
        code = main(["bench", "--smoke", "--check", "--baseline",
                     str(generous)] + args)
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_committed_baseline_is_checkable(self):
        """The repo's BENCH_repro.json must parse and be full-scale."""
        payload = json.loads(
            (Path(__file__).resolve().parents[1] / "BENCH_repro.json").read_text()
        )
        assert payload["smoke"] is False
        assert payload["rowop_speedup"] >= 10.0
        assert payload["metrics"]["stage_seconds"]
        # Self-comparison is the identity check: zero violations.
        violations, _ = check_regression(payload, payload)
        assert violations == []


class TestBenchCLI:
    def test_cli_smoke(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--smoke", "--out", str(out),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "rowop_validate" in captured
        assert json.loads(out.read_text())["smoke"] is True

    def test_smoke_scale_is_small(self):
        assert SMOKE_SCALE.num_samples <= 128 and SMOKE_SCALE.epochs == 1
