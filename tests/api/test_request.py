"""ExperimentRequest/ExperimentResult: JSON round-trip and hash stability."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentRequest, ExperimentResult, RunOptions
from repro.eval.common import ExperimentScale


def make_request(**overrides) -> ExperimentRequest:
    kwargs = dict(
        experiment="fig8",
        workloads=(("AlexNet", "CIFAR-10"), ("ResNet-18", "ImageNet")),
        pruning_rate=0.9,
        scale=ExperimentScale.quick(),
        params={"alpha": [1, 2, 3], "mode": "fast", "flag": True},
    )
    kwargs.update(overrides)
    return ExperimentRequest(**kwargs)


class TestRequestConstruction:
    def test_workload_names_are_normalized(self):
        request = ExperimentRequest(
            experiment="fig8", workloads=(("resnet18", "cifar10"),)
        )
        assert request.workloads == (("ResNet-18", "CIFAR-10"),)

    def test_unknown_model_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered models.*AlexNet"):
            ExperimentRequest(experiment="fig8", workloads=(("LeNet", "CIFAR-10"),))

    def test_unknown_dataset_lists_known_names(self):
        with pytest.raises(ValueError, match="known datasets.*CIFAR-10"):
            ExperimentRequest(experiment="fig8", workloads=(("AlexNet", "MNIST"),))

    def test_default_scale_is_quick(self):
        assert ExperimentRequest(experiment="fig8").scale == ExperimentScale.quick()

    def test_invalid_pruning_rate_rejected(self):
        with pytest.raises(ValueError, match="pruning_rate"):
            ExperimentRequest(experiment="fig8", pruning_rate=1.0)

    def test_params_are_sorted_and_jsonified(self):
        request = make_request(params={"b": (1, 2), "a": "x"})
        assert request.params == (("a", "x"), ("b", [1, 2]))

    def test_non_json_param_rejected(self):
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            make_request(params={"bad": object()})

    def test_param_lookup_and_with_params(self):
        request = make_request()
        assert request.param("mode") == "fast"
        assert request.param("missing", 42) == 42
        updated = request.with_params(mode="slow", extra=1)
        assert updated.param("mode") == "slow"
        assert updated.param("extra") == 1
        assert request.param("mode") == "fast"  # original untouched


class TestRequestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        request = make_request()
        assert ExperimentRequest.from_dict(request.to_dict()) == request

    def test_json_round_trip_is_identity(self):
        request = make_request(scale=ExperimentScale.thorough())
        restored = ExperimentRequest.from_json(request.to_json())
        assert restored == request
        assert restored.scale == ExperimentScale.thorough()

    def test_to_json_is_valid_json(self):
        payload = json.loads(make_request().to_json())
        assert payload["experiment"] == "fig8"
        assert payload["workloads"] == [["AlexNet", "CIFAR-10"], ["ResNet-18", "ImageNet"]]


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        assert make_request().content_hash == make_request().content_hash

    def test_hash_survives_json_round_trip(self):
        request = make_request()
        restored = ExperimentRequest.from_json(request.to_json())
        assert restored.content_hash == request.content_hash

    def test_hash_ignores_param_order(self):
        a = make_request(params={"x": 1, "y": 2})
        b = make_request(params={"y": 2, "x": 1})
        assert a.content_hash == b.content_hash

    @pytest.mark.parametrize(
        "override",
        [
            {"experiment": "fig9"},
            {"pruning_rate": 0.8},
            {"workloads": (("AlexNet", "CIFAR-10"),)},
            {"scale": ExperimentScale.thorough()},
            {"params": {"alpha": [1, 2, 4], "mode": "fast", "flag": True}},
        ],
    )
    def test_hash_is_sensitive_to_every_field(self, override):
        assert make_request(**override).content_hash != make_request().content_hash


class TestResultRoundTrip:
    def test_result_round_trip(self):
        result = ExperimentResult(
            experiment="fig8",
            request=make_request(),
            payload={"mean_speedup": 2.5},
            summary="table text",
            timings=(("train", 1.5), ("report", 0.1)),
            cache_hits=(("train", True),),
            native=object(),  # never serialized
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.experiment == result.experiment
        assert restored.request == result.request
        assert restored.payload == result.payload
        assert restored.summary == result.summary
        assert restored.stage_seconds == {"train": 1.5, "report": 0.1}
        assert restored.native is None


class TestRunOptions:
    def test_caches_disabled(self):
        options = RunOptions(use_cache=False)
        assert options.density_cache() is None
        assert options.sweep_cache() is None

    def test_caches_land_in_cache_dir(self, tmp_path):
        options = RunOptions(cache_dir=tmp_path)
        assert str(options.density_cache().path).startswith(str(tmp_path))
        assert str(options.sweep_cache().path).startswith(str(tmp_path))
