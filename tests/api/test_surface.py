"""Public-API surface snapshot: the exported names of ``repro.api`` are pinned.

Additive changes must update this snapshot deliberately; removals/renames
require a deprecation cycle first (see the API stability policy in
DESIGN.md).
"""

from __future__ import annotations

import repro.api as api

# The frozen public surface.  Keep sorted.
EXPECTED_SURFACE = [
    "DEFAULT_FIDELITY",
    "DeadlineExceeded",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentReport",
    "ExperimentRequest",
    "ExperimentResult",
    "FIDELITY_CHOICES",
    "Fidelity",
    "Pipeline",
    "PipelineContext",
    "Registry",
    "RunOptions",
    "Runner",
    "STAGE_ORDER",
    "Stage",
    "UnknownNameError",
    "WORKLOADS",
    "Workload",
    "canonical_json",
    "content_hash",
    "default_runner",
    "fidelity_dispatch",
    "fidelity_of",
    "get_experiment",
    "get_workload",
    "list_experiments",
    "list_workloads",
    "register_experiment",
    "register_workload",
    "run_experiment",
]

# The built-in experiment registry every release must keep serving.
EXPECTED_EXPERIMENTS = {
    "ablate-energy",
    "analytic-validate",
    "ablate-fifo",
    "ablate-pes",
    "ablate-rate",
    "bench",
    "fig8",
    "fig9",
    "pareto",
    "sweep",
    "table1",
    "table2",
}

# The canonical stage vocabulary, in canonical order.
EXPECTED_STAGE_ORDER = ("train", "prune", "profile", "compile", "simulate", "report")


class TestSurface:
    def test_all_is_pinned(self):
        assert sorted(api.__all__) == EXPECTED_SURFACE

    def test_every_exported_name_resolves(self):
        for name in EXPECTED_SURFACE:
            assert getattr(api, name) is not None

    def test_builtin_experiments_pinned(self):
        names = {experiment.name for experiment in api.list_experiments()}
        assert EXPECTED_EXPERIMENTS <= names

    def test_builtin_workloads_cover_the_paper_grid(self):
        names = {workload.name for workload in api.list_workloads()}
        assert {"AlexNet", "ResNet-18", "ResNet-34", "VGG-16", "MobileNetV1"} <= names

    def test_stage_order_pinned(self):
        assert api.STAGE_ORDER == EXPECTED_STAGE_ORDER

    def test_cache_dir_constant_matches_explore(self):
        # repro.api re-declares the default cache dir to stay import-light;
        # this pins the two constants together.
        from repro.api.request import DEFAULT_CACHE_DIR as api_dir
        from repro.explore.cache import DEFAULT_CACHE_DIR as explore_dir

        assert api_dir == explore_dir

    def test_every_experiment_describes_itself(self):
        for experiment in api.list_experiments():
            assert experiment.description
