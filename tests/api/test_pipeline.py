"""Pipeline/Stage/Runner/registry mechanics (no training, no simulation)."""

from __future__ import annotations

import pytest

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Experiment,
    Pipeline,
    PipelineContext,
    Registry,
    Runner,
    Stage,
    UnknownNameError,
    default_runner,
)
from repro.explore.cache import ResultCache


def _request() -> ExperimentRequest:
    return ExperimentRequest(experiment="test")


class TestStageAndPipelineValidation:
    def test_unknown_stage_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stage name"):
            Stage("cook", lambda ctx: None)

    def test_duplicate_stage_names_rejected(self):
        stages = [Stage("train", lambda ctx: 1), Stage("train", lambda ctx: 2)]
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline("p", stages + [Stage("report", lambda ctx: None)])

    def test_out_of_order_stages_rejected(self):
        with pytest.raises(ValueError, match="canonical order"):
            Pipeline(
                "p",
                [
                    Stage("simulate", lambda ctx: None),
                    Stage("train", lambda ctx: None),
                    Stage("report", lambda ctx: None),
                ],
            )

    def test_pipeline_must_end_with_report(self):
        with pytest.raises(ValueError, match="report"):
            Pipeline("p", [Stage("train", lambda ctx: None)])

    def test_subsequence_of_canonical_order_is_allowed(self):
        pipeline = Pipeline(
            "p", [Stage("prune", lambda ctx: 1), Stage("report", lambda ctx: None)]
        )
        assert pipeline.stage_names == ("prune", "report")


class TestPipelineExecution:
    def test_artifacts_timings_and_chaining(self):
        pipeline = Pipeline(
            "p",
            [
                Stage("train", lambda ctx: 21),
                Stage("profile", lambda ctx: ctx["train"] * 2),
                Stage(
                    "report",
                    lambda ctx: ExperimentReport(
                        payload={"v": ctx["profile"]}, summary="s", native=ctx["profile"]
                    ),
                ),
            ],
        )
        ctx = PipelineContext(request=_request())
        report = pipeline.run(ctx)
        assert report.native == 42
        assert ctx.artifacts["train"] == 21
        assert set(ctx.timings) == {"train", "profile", "report"}
        assert all(seconds >= 0.0 for seconds in ctx.timings.values())

    def test_missing_artifact_lookup_is_helpful(self):
        ctx = PipelineContext(request=_request())
        with pytest.raises(KeyError, match="no artifact for stage 'train'"):
            ctx["train"]


class TestStageCacheHook:
    def test_miss_then_hit(self, tmp_path):
        store = ResultCache(tmp_path / "stage.jsonl")
        ctx = PipelineContext(request=_request())
        ctx.current_stage = "train"
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        first = ctx.cached("key", compute, store=store)
        second = ctx.cached("key", compute, store=store)
        assert first == second == {"x": 1}
        assert len(calls) == 1
        assert ctx.cache_events["train"] == [("key", False), ("key", True)]
        assert not ctx.stage_cache_hit("train")  # first lookup missed

        fresh = PipelineContext(request=_request())
        fresh.current_stage = "train"
        fresh.cached("key", compute, store=store)
        assert fresh.stage_cache_hit("train")
        assert len(calls) == 1

    def test_serializer_round_trip(self, tmp_path):
        store = ResultCache(tmp_path / "stage.jsonl")
        ctx = PipelineContext(request=_request())
        ctx.current_stage = "train"
        ctx.cached(
            "k",
            lambda: (1, 2),
            store=store,
            serialize=lambda value: {"items": list(value)},
            deserialize=lambda record: tuple(record["items"]),
        )
        restored = ctx.cached(
            "k",
            lambda: pytest.fail("should be cached"),
            store=store,
            serialize=lambda value: {"items": list(value)},
            deserialize=lambda record: tuple(record["items"]),
        )
        assert restored == (1, 2)

    def test_no_store_always_computes(self):
        ctx = PipelineContext(request=_request())
        ctx.current_stage = "train"
        calls = []
        for _ in range(2):
            ctx.cached("k", lambda: calls.append(1), store=None)
        assert len(calls) == 2
        assert ctx.stage_cache_hit("train") is False


def _square(x: int) -> int:
    return x * x


class TestRunner:
    def test_serial_map_preserves_order(self):
        assert Runner(parallel=False).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        serial = Runner(parallel=False).map(_square, items)
        parallel = Runner(max_workers=2, parallel=True).map(_square, items)
        assert parallel == serial

    def test_single_item_stays_serial(self):
        assert Runner(max_workers=4).map(_square, [5]) == [25]

    def test_default_runner_semantics(self):
        assert default_runner(None).parallel is False
        assert default_runner(1).parallel is False
        assert default_runner(4).parallel is True

    def test_default_runner_parallel_override(self):
        # RunOptions(parallel=False) must force serial even with workers set.
        assert default_runner(4, parallel=False).parallel is False
        assert default_runner(None, parallel=True).parallel is True

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            Runner(max_workers=0)


class TestRegistry:
    def test_add_get_and_duplicate(self):
        registry = Registry("thing")
        registry.add("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry and len(registry) == 1
        with pytest.raises(ValueError, match="already registered"):
            registry.add("a", 2)

    def test_unknown_name_lists_alternatives(self):
        registry = Registry("thing")
        registry.add("alpha", 1)
        registry.add("beta", 2)
        with pytest.raises(UnknownNameError, match="alpha, beta"):
            registry.get("gamma")

    def test_experiment_rejects_mismatched_request(self):
        experiment = Experiment(
            name="x",
            build=lambda request: Pipeline(
                "x",
                [Stage("report", lambda ctx: ExperimentReport({}, ""))],
            ),
        )
        with pytest.raises(ValueError, match="not 'x'"):
            experiment.run(ExperimentRequest(experiment="y"))

    def test_experiment_run_packages_result(self):
        experiment = Experiment(
            name="x",
            build=lambda request: Pipeline(
                "x",
                [
                    Stage("compile", lambda ctx: [1, 2]),
                    Stage(
                        "report",
                        lambda ctx: ExperimentReport(
                            payload={"n": len(ctx["compile"])}, summary="two"
                        ),
                    ),
                ],
            ),
        )
        result = experiment.run(ExperimentRequest(experiment="x"))
        assert result.payload == {"n": 2}
        assert result.summary == "two"
        assert tuple(name for name, _ in result.timings) == ("compile", "report")
