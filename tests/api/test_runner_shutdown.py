"""Regression tests: interrupted Runner fan-outs must not orphan workers.

A KeyboardInterrupt (or SIGTERM surfacing as SystemExit) during a pool
fan-out used to leave the executor's workers computing the rest of the batch
while the parent unwound.  The hardened path cancels queued futures,
terminates and joins the workers, and surfaces the results delivered before
the interrupt through ``Runner.map(..., partial=...)``.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.api.runner import Runner


def _double_or_interrupt(item: int) -> int:
    """Picklable worker: negative items simulate Ctrl-C arriving mid-batch."""
    if item < 0:
        raise KeyboardInterrupt
    return item * 2


def _double_or_fail(item: int) -> int:
    if item < 0:
        raise ValueError(f"worker failed on {item}")
    return item * 2


def _assert_no_orphaned_children(timeout: float = 10.0) -> None:
    """Every multiprocessing child must exit within ``timeout`` seconds."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestSerialInterrupt:
    def test_interrupt_propagates_with_partial_results(self):
        runner = Runner(parallel=False)
        partial: list[int] = []
        with pytest.raises(KeyboardInterrupt):
            runner.map(_double_or_interrupt, [1, 2, -1, 4], partial=partial)
        assert partial == [2, 4]

    def test_partial_list_is_returned_on_success(self):
        runner = Runner(parallel=False)
        partial: list[int] = []
        result = runner.map(_double_or_interrupt, [1, 2], partial=partial)
        assert result is partial
        assert partial == [2, 4]


class TestPoolInterrupt:
    """Pool-path interrupts.  Where spawning processes is forbidden the
    Runner falls back to the serial path, which satisfies the same
    contract — the assertions hold either way."""

    def test_interrupt_terminates_workers(self):
        runner = Runner(max_workers=2)
        with pytest.raises(KeyboardInterrupt):
            runner.map(_double_or_interrupt, [-1] * 8)
        _assert_no_orphaned_children()

    def test_worker_exception_terminates_workers(self):
        runner = Runner(max_workers=2)
        partial: list[int] = []
        with pytest.raises(ValueError, match="worker failed"):
            runner.map(_double_or_fail, [1, 2, -3, 4], partial=partial)
        # Order-preserving map: everything before the failing item arrived.
        assert partial == [2, 4]
        _assert_no_orphaned_children()

    def test_abandoned_generator_cleans_up(self):
        runner = Runner(max_workers=2)
        stream = runner.imap(_double_or_interrupt, list(range(64)))
        assert next(stream) == 0
        stream.close()  # GeneratorExit inside imap must tear the pool down
        _assert_no_orphaned_children()
