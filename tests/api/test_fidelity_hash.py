"""Hash stability of the fidelity field.

Two invariants guard the caches:

* legacy requests (no fidelity / default fidelity) keep their pre-field
  content hashes bit for bit — pinned below against hashes computed before
  the field existed;
* requests differing only in fidelity hash differently, so neither the
  serve store's dedup-by-hash nor the sweep ResultCache can ever mix tiers.
"""

from __future__ import annotations

import pytest

from repro.analytic.model import analytic_point_key
from repro.api import ExperimentRequest
from repro.explore.cache import ResultCache
from repro.explore.engine import DesignPoint

# Content hashes computed on the seed code base, before the fidelity field
# existed.  These must never change.
PINNED_SWEEP_HASH = "2551fa9699dcba75aa5d7c02c8f129f9cee411eb1152fd98a8f1b7907cb44263"
PINNED_FIG8_HASH = "53828017b485b95225b8c92738f5df1da181532f018831b3799fa708901059be"


def _sweep_request(**kwargs) -> ExperimentRequest:
    return ExperimentRequest(
        experiment="sweep",
        workloads=(("AlexNet", "CIFAR-10"),),
        pruning_rate=0.9,
        params={
            "pes": [84, 168],
            "buffers": [386],
            "pruning_rates": [0.9],
            "sample": None,
            "seed": 0,
        },
        **kwargs,
    )


class TestLegacyHashStability:
    def test_pinned_seed_hashes_unchanged(self):
        assert _sweep_request().content_hash == PINNED_SWEEP_HASH
        assert (
            ExperimentRequest(experiment="fig8").content_hash == PINNED_FIG8_HASH
        )

    def test_default_fidelity_not_serialized(self):
        data = _sweep_request().to_dict()
        assert "fidelity" not in data
        assert ExperimentRequest.from_dict(data).fidelity == "vectorized"

    def test_explicit_default_equals_legacy(self):
        assert (
            _sweep_request(fidelity="vectorized").content_hash == PINNED_SWEEP_HASH
        )


class TestTierSeparation:
    def test_fidelity_changes_the_hash(self):
        hashes = {
            _sweep_request(fidelity=tier).content_hash
            for tier in ("analytic", "vectorized", "scalar")
        }
        assert len(hashes) == 3

    def test_non_default_fidelity_round_trips(self):
        request = _sweep_request(fidelity="analytic")
        data = request.to_dict()
        assert data["fidelity"] == "analytic"
        restored = ExperimentRequest.from_dict(data)
        assert restored == request
        assert restored.content_hash == request.content_hash

    def test_serve_store_dedup_keeps_tiers_apart(self, tmp_path):
        from repro.serve.store import JobStore

        store = JobStore(tmp_path / "serve.db")
        try:
            legacy, deduped_a = store.submit(_sweep_request())
            analytic, deduped_b = store.submit(_sweep_request(fidelity="analytic"))
            again, deduped_c = store.submit(_sweep_request(fidelity="analytic"))
            assert not deduped_a and not deduped_b
            assert legacy.id != analytic.id
            assert deduped_c and again.id == analytic.id
            assert legacy.fidelity == "vectorized"
            assert analytic.fidelity == "analytic"
            assert analytic.to_dict()["fidelity"] == "analytic"
        finally:
            store.close()

    def test_result_cache_keys_keep_tiers_apart(self, tmp_path):
        point = DesignPoint(model="AlexNet", dataset="CIFAR-10", pruning_rate=0.9)
        assert analytic_point_key(point) != point.key
        cache = ResultCache(tmp_path / "sweep.jsonl")
        from repro.analytic.model import evaluate_points_analytic
        from repro.explore.engine import evaluate_point

        simulated = evaluate_point(point)
        analytic = evaluate_points_analytic([point])[0]
        cache.put(simulated.key, simulated.to_dict())
        cache.put(analytic.key, analytic.to_dict())
        assert cache.get(point.key) == simulated.to_dict()
        assert cache.get(analytic_point_key(point)) == analytic.to_dict()
