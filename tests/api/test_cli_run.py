"""CLI registry dispatch: ``repro list``, ``repro run``, and error paths."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentResult
from repro.cli import main


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListCommand:
    def test_lists_experiments_and_workloads(self, capsys):
        code, out, _ = run_cli(["list"], capsys)
        assert code == 0
        for name in ("fig8", "fig9", "table1", "table2", "bench", "sweep", "pareto"):
            assert name in out
        for workload in ("AlexNet", "ResNet-18", "VGG-16", "MobileNetV1"):
            assert workload in out


class TestRunCommand:
    def test_unknown_experiment_lists_alternatives_and_fails(self, capsys):
        code, _, err = run_cli(["run", "nope"], capsys)
        assert code == 2
        assert "unknown experiment 'nope'" in err
        assert "fig8" in err and "sweep" in err  # the helpful listing

    def test_unknown_workload_lists_alternatives_and_fails(self, capsys):
        code, _, err = run_cli(
            ["run", "fig8", "--workloads", "LeNet/CIFAR-10"], capsys
        )
        assert code == 2
        assert "unknown workload model 'LeNet'" in err
        assert "AlexNet" in err

    def test_unknown_dataset_fails_helpfully(self, capsys):
        code, _, err = run_cli(
            ["run", "fig8", "--workloads", "AlexNet/MNIST"], capsys
        )
        assert code == 2
        assert "unknown dataset" in err and "CIFAR-10" in err

    def test_bad_set_syntax_fails(self, capsys):
        code, _, err = run_cli(["run", "ablate-fifo", "--set", "oops"], capsys)
        assert code == 2
        assert "key=value" in err

    def test_run_ablation_summary(self, capsys):
        code, out, _ = run_cli(
            ["run", "ablate-fifo", "--set", "fifo_depths=[1,5]",
             "--set", "num_batches=16", "--set", "batch_elements=1024"],
            capsys,
        )
        assert code == 0
        assert "depth" in out and "target" in out

    def test_run_json_round_trips(self, capsys, tmp_path):
        out_file = tmp_path / "result.json"
        code, out, _ = run_cli(
            ["run", "ablate-rate", "--json", "--out", str(out_file),
             "--set", "pruning_rates=[0.0,0.9]"],
            capsys,
        )
        assert code == 0
        # stdout carries the same JSON document that was written to --out.
        printed = json.loads(out)
        written = json.loads(out_file.read_text())
        assert printed == written
        result = ExperimentResult.from_json(out_file.read_text())
        assert result.experiment == "ablate-rate"
        assert len(result.payload["points"]) == 2
        assert result.request.param("pruning_rates") == [0.0, 0.9]
        assert set(result.stage_seconds) == {"compile", "simulate", "report"}

    def test_smoke_flag_selects_smoke_scale(self, capsys):
        code, out, _ = run_cli(
            ["run", "ablate-pes", "--smoke", "--json", "--set", "pe_counts=[84]"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["request"]["scale"]["num_samples"] == 96
        assert payload["request"]["scale"]["epochs"] == 1

    def test_unknown_scale_preset_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig8", "--scale", "galactic"])

    def test_run_bench_without_workloads_uses_bench_workload(self, capsys, tmp_path):
        """`repro run bench` defaults to the standard bench workload."""
        code, out, _ = run_cli(
            ["run", "bench", "--smoke", "--json",
             "--cache-dir", str(tmp_path / "cache")],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["payload"]["workload"] == "AlexNet/CIFAR-10"
        assert set(payload["timings"]) == {"train", "compile", "simulate", "report"}
