"""Tests for the layer classes (shapes, gradients, hooks, modes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    MaxPool2D,
    Parameter,
    ReLU,
)


class TestParameter:
    def test_accumulate_grad_creates_then_adds(self):
        param = Parameter(np.zeros((2, 2)), name="w")
        param.accumulate_grad(np.ones((2, 2)))
        param.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_array_equal(param.grad, 2 * np.ones((2, 2)))

    def test_accumulate_grad_shape_mismatch(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.accumulate_grad(np.ones((3,)))

    def test_zero_grad(self):
        param = Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.zero_grad()
        assert param.grad is None

    def test_shape_and_size(self):
        param = Parameter(np.zeros((4, 5)))
        assert param.shape == (4, 5)
        assert param.size == 20


class TestConv2D:
    def test_forward_shape(self, rng):
        conv = Conv2D(3, 8, 3, stride=1, padding=1, rng=rng)
        out = conv.forward(rng.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_output_shape_helper(self, rng):
        conv = Conv2D(3, 8, 3, stride=2, padding=1, rng=rng)
        assert conv.output_shape((3, 32, 32)) == (8, 16, 16)

    def test_rejects_wrong_channel_count(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(rng.normal(size=(1, 2, 8, 8)))

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 4, 6, 6)))

    def test_backward_accumulates_parameter_grads(self, rng):
        conv = Conv2D(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out = conv.forward(x)
        grad_in = conv.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None

    def test_no_bias_configuration(self, rng):
        conv = Conv2D(2, 3, 3, bias=False, rng=rng)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_full_layer_gradient_check(self, rng, num_grad):
        conv = Conv2D(2, 2, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = conv.backward(grad_out)

        def loss():
            return float(np.sum(conv.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-6)
        np.testing.assert_allclose(num_grad(loss, conv.weight.data), conv.weight.grad, atol=1e-6)

    @pytest.mark.parametrize("bad", [{"in_channels": 0}, {"kernel_size": -1}, {"stride": 0}])
    def test_invalid_construction(self, bad):
        kwargs = dict(in_channels=3, out_channels=4, kernel_size=3, stride=1, padding=0)
        kwargs.update(bad)
        with pytest.raises((ValueError, TypeError)):
            Conv2D(**kwargs)


class TestLinear:
    def test_forward_backward_shapes(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.normal(size=(5, 6))
        out = layer.forward(x)
        assert out.shape == (5, 4)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.weight.grad.shape == (4, 6)

    def test_rejects_wrong_feature_count(self, rng):
        layer = Linear(6, 4, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(3, 2, rng=rng).backward(np.zeros((1, 2)))


class TestReLULayer:
    def test_mask_recorded(self, rng):
        relu = ReLU()
        x = rng.normal(size=(2, 3, 4, 4))
        out = relu.forward(x)
        assert relu.mask is not None
        np.testing.assert_array_equal(out > 0, relu.mask)

    def test_backward_uses_mask(self, rng):
        relu = ReLU()
        x = rng.normal(size=(2, 3))
        relu.forward(x)
        grad = relu.backward(np.ones((2, 3)))
        np.testing.assert_array_equal(grad, (x > 0).astype(float))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 1)))


class TestPoolingLayers:
    def test_maxpool_shapes_and_output_shape_helper(self, rng):
        pool = MaxPool2D(2)
        out = pool.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)
        assert pool.output_shape((3, 8, 8)) == (3, 4, 4)

    def test_maxpool_backward_shape(self, rng):
        pool = MaxPool2D(2)
        x = rng.normal(size=(1, 2, 6, 6))
        out = pool.forward(x)
        assert pool.backward(np.ones_like(out)).shape == x.shape

    def test_avgpool_mean_value(self):
        pool = AvgPool2D(2)
        x = np.ones((1, 1, 4, 4))
        np.testing.assert_allclose(pool.forward(x), np.ones((1, 1, 2, 2)))

    def test_global_avgpool_forward_backward(self, rng, num_grad):
        pool = GlobalAvgPool2D()
        x = rng.normal(size=(2, 3, 4, 4))
        out = pool.forward(x)
        assert out.shape == (2, 3)
        grad_out = rng.normal(size=out.shape)
        grad_in = pool.backward(grad_out)

        def loss():
            return float(np.sum(pool.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-8)


class TestBatchNormLayers:
    def test_bn2d_train_vs_eval(self, rng):
        bn = BatchNorm2D(3)
        x = rng.normal(loc=2.0, size=(8, 3, 4, 4))
        out_train = bn.forward(x)
        assert abs(out_train.mean()) < 1e-6
        bn.eval()
        out_eval = bn.forward(x)
        # Eval uses running stats (partially updated), so not exactly normalised.
        assert out_eval.shape == x.shape

    def test_bn2d_backward_requires_training_forward(self, rng):
        bn = BatchNorm2D(3)
        bn.eval()
        bn.forward(rng.normal(size=(4, 3, 2, 2)))
        with pytest.raises(RuntimeError):
            bn.backward(np.ones((4, 3, 2, 2)))

    def test_bn1d_shapes(self, rng):
        bn = BatchNorm1D(5)
        x = rng.normal(size=(10, 5))
        out = bn.forward(x)
        assert out.shape == x.shape
        assert bn.backward(np.ones_like(out)).shape == x.shape

    def test_bn_rejects_wrong_shape(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2D(3).forward(rng.normal(size=(4, 4, 2, 2)))
        with pytest.raises(ValueError):
            BatchNorm1D(3).forward(rng.normal(size=(4, 4)))

    def test_bn_parameters(self):
        bn = BatchNorm2D(6)
        params = bn.parameters()
        assert len(params) == 2
        assert {p.data.shape for p in params} == {(6,)}


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        flatten = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = flatten.forward(x)
        assert out.shape == (3, 32)
        np.testing.assert_array_equal(flatten.backward(out), x)

    def test_dropout_inactive_in_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_dropout_scales_in_training(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,))
        out = drop.forward(x)
        # Inverted dropout: surviving values are scaled by 1/keep.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_backward_uses_same_mask(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((100,))
        out = drop.forward(x)
        grad = drop.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad, out)

    def test_dropout_rate_zero_is_identity(self, rng):
        drop = Dropout(0.0)
        x = rng.normal(size=(5, 5))
        np.testing.assert_array_equal(drop.forward(x), x)


class TestHooks:
    def test_grad_output_hook_applied_before_backward(self, rng):
        relu = ReLU()
        x = rng.normal(size=(2, 2))
        relu.forward(x)
        relu.register_grad_output_hook(lambda g: g * 0.0)
        grad = relu.backward(np.ones((2, 2)))
        np.testing.assert_array_equal(grad, np.zeros((2, 2)))

    def test_grad_input_hook_applied_after_backward(self, rng):
        relu = ReLU()
        x = np.abs(rng.normal(size=(2, 2))) + 0.1  # all positive -> mask all ones
        relu.forward(x)
        relu.register_grad_input_hook(lambda g: g + 5.0)
        grad = relu.backward(np.ones((2, 2)))
        np.testing.assert_array_equal(grad, 6.0 * np.ones((2, 2)))

    def test_forward_hook_observes_input_and_output(self, rng):
        conv = Conv2D(1, 1, 3, padding=1, rng=rng)
        seen = {}

        def hook(layer, x, out):
            seen["in_shape"] = x.shape
            seen["out_shape"] = out.shape

        conv.register_forward_hook(hook)
        conv.forward(rng.normal(size=(1, 1, 4, 4)))
        assert seen == {"in_shape": (1, 1, 4, 4), "out_shape": (1, 1, 4, 4)}

    def test_clear_hooks(self, rng):
        relu = ReLU()
        relu.register_grad_output_hook(lambda g: g * 0.0)
        relu.register_forward_hook(lambda l, x, o: None)
        relu.clear_hooks()
        relu.forward(np.ones((2, 2)))
        grad = relu.backward(np.ones((2, 2)))
        np.testing.assert_array_equal(grad, np.ones((2, 2)))
