"""Tests for the training loop, callbacks and history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.alexnet import build_alexnet
from repro.nn import SGD, Callback, Trainer, accuracy
from repro.nn.layers import Flatten, Linear, ReLU, Sequential


def _linear_model(rng, num_classes=4, image_size=8, channels=3):
    return Sequential(
        [
            Flatten(),
            Linear(channels * image_size * image_size, 32, rng=rng),
            ReLU(),
            Linear(32, num_classes, rng=rng),
        ]
    )


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_epoch_start(self, trainer, epoch):
        self.events.append(("epoch_start", epoch))

    def on_epoch_end(self, trainer, epoch, stats):
        self.events.append(("epoch_end", epoch))

    def on_batch_start(self, trainer, step):
        self.events.append(("batch_start", step))

    def on_batch_end(self, trainer, step, loss):
        self.events.append(("batch_end", step))


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0


class TestTrainer:
    def test_training_reduces_loss(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1, momentum=0.9))
        history = trainer.fit(
            tiny_dataset.images, tiny_dataset.labels, epochs=5, batch_size=32
        )
        losses = history.train_losses()
        assert losses[-1] < losses[0]
        assert history.final_train_accuracy > 0.5

    def test_cnn_learns_synthetic_task(self, tiny_dataset):
        model = build_alexnet(
            num_classes=tiny_dataset.num_classes,
            image_size=8,
            width_scale=0.1,
            rng=np.random.default_rng(0),
        )
        train, test = tiny_dataset.split(0.8, np.random.default_rng(1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01, momentum=0.9))
        history = trainer.fit(
            train.images,
            train.labels,
            epochs=4,
            batch_size=32,
            test_images=test.images,
            test_labels=test.labels,
        )
        # 4 classes -> chance is 0.25; the model must beat chance clearly.
        assert history.best_test_accuracy > 0.4

    def test_callbacks_invoked_in_order(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        callback = RecordingCallback()
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), callbacks=[callback])
        trainer.fit(tiny_dataset.images[:64], tiny_dataset.labels[:64], epochs=1, batch_size=32)
        kinds = [kind for kind, _ in callback.events]
        assert kinds[0] == "epoch_start"
        assert kinds[-1] == "epoch_end"
        assert kinds.count("batch_start") == 2
        assert kinds.count("batch_end") == 2

    def test_history_records_test_metrics(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        history = trainer.fit(
            tiny_dataset.images[:96],
            tiny_dataset.labels[:96],
            epochs=2,
            batch_size=32,
            test_images=tiny_dataset.images[96:128],
            test_labels=tiny_dataset.labels[96:128],
        )
        assert all(e.test_accuracy is not None for e in history.epochs)
        assert history.best_test_accuracy is not None

    def test_global_step_increments(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        trainer.fit(tiny_dataset.images[:64], tiny_dataset.labels[:64], epochs=2, batch_size=32)
        assert trainer.global_step == 4

    def test_evaluate_returns_loss_and_accuracy(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        loss, acc = trainer.evaluate(tiny_dataset.images[:32], tiny_dataset.labels[:32])
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_fit_rejects_bad_arguments(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.images, tiny_dataset.labels[:10], epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.images, tiny_dataset.labels, epochs=0)

    def test_add_callback(self, rng, tiny_dataset):
        model = _linear_model(rng, num_classes=tiny_dataset.num_classes)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        callback = RecordingCallback()
        trainer.add_callback(callback)
        trainer.train_step(tiny_dataset.images[:8], tiny_dataset.labels[:8])
        assert callback.events

    def test_deterministic_given_seeds(self, tiny_dataset):
        results = []
        for _ in range(2):
            model = _linear_model(np.random.default_rng(3), num_classes=tiny_dataset.num_classes)
            trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
            history = trainer.fit(
                tiny_dataset.images[:64],
                tiny_dataset.labels[:64],
                epochs=1,
                batch_size=16,
                shuffle_rng=np.random.default_rng(0),
            )
            results.append(history.train_losses())
        np.testing.assert_allclose(results[0], results[1])

    def test_empty_history_raises(self):
        from repro.nn.trainer import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_train_accuracy
