"""Tests for losses, optimisers and the LR scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.optim import SGD, Adam, StepLR


class TestSoftmaxCrossEntropy:
    def test_forward_and_backward_shapes(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        value = loss.forward(logits, labels)
        assert np.isfinite(value) and value > 0
        grad = loss.backward()
        assert grad.shape == logits.shape

    def test_gradient_sums_to_zero_per_row(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        loss.forward(logits, labels)
        np.testing.assert_allclose(loss.backward().sum(axis=1), np.zeros(5), atol=1e-12)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_rejects_bad_shapes_and_labels(self, rng):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(rng.normal(size=(3,)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            loss.forward(rng.normal(size=(3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss.forward(rng.normal(size=(2, 2)), np.array([0, 5]))

    def test_callable_interface(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(2, 2))
        assert loss(logits, np.array([0, 1])) == pytest.approx(
            SoftmaxCrossEntropy().forward(logits, np.array([0, 1]))
        )


class TestMeanSquaredError:
    def test_zero_loss_for_identical_inputs(self, rng):
        loss = MeanSquaredError()
        x = rng.normal(size=(4, 4))
        assert loss.forward(x, x.copy()) == pytest.approx(0.0)

    def test_gradient_matches_analytic(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss.forward(pred, target)
        np.testing.assert_allclose(loss.backward(), 2 * (pred - target) / pred.size)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(rng.normal(size=(2, 2)), rng.normal(size=(3,)))


class TestSGD:
    def _param(self, value=1.0):
        param = Parameter(np.array([value]))
        param.accumulate_grad(np.array([0.5]))
        return param

    def test_basic_update(self):
        param = self._param()
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        optimizer = SGD([param], lr=1.0, momentum=0.9)
        for _ in range(2):
            param.grad = np.array([1.0])
            optimizer.step()
        # Updates: v1 = 1 -> -1; v2 = 0.9 + 1 = 1.9 -> total -2.9
        np.testing.assert_allclose(param.data, [-2.9])

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([10.0]))
        param.accumulate_grad(np.array([0.0]))
        SGD([param], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(param.data, [10.0 - 0.1 * 0.5 * 10.0])

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_zero_grad(self):
        param = self._param()
        optimizer = SGD([param], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"momentum": 1.5}, {"weight_decay": -1.0}])
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **{"lr": 0.1, **kwargs})

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_minimises_quadratic(self):
        param = Parameter(np.array([5.0]))
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(200):
            param.grad = 2 * param.data  # d/dx x^2
            optimizer.step()
        assert abs(param.data[0]) < 1e-3


class TestAdam:
    def test_minimises_quadratic(self):
        param = Parameter(np.array([5.0]))
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            param.grad = 2 * param.data
            optimizer.step()
        assert abs(param.data[0]) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_step_without_grad_is_noop(self):
        param = Parameter(np.array([1.0]))
        Adam([param]).step()
        np.testing.assert_allclose(param.data, [1.0])


class TestStepLR:
    def test_decays_at_step_size(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_invalid_arguments(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=1, gamma=0.0)
