"""Tests for the memoized im2col gather indices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


@pytest.fixture(autouse=True)
def fresh_cache():
    F.im2col_cache_clear()
    yield
    F.im2col_cache_clear()


class TestIm2colIndexCache:
    def test_repeated_geometry_hits(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        F.im2col(x, 3, 3, 1, 1)
        first = F.im2col_cache_info()
        assert first.misses == 1
        F.im2col(x, 3, 3, 1, 1)
        second = F.im2col_cache_info()
        assert second.misses == 1 and second.hits >= 1

    def test_batch_size_does_not_split_cache(self, rng):
        F.im2col(rng.normal(size=(1, 3, 8, 8)), 3, 3, 1, 1)
        F.im2col(rng.normal(size=(7, 3, 8, 8)), 3, 3, 1, 1)
        assert F.im2col_cache_info().misses == 1

    def test_different_geometry_misses(self, rng):
        F.im2col(rng.normal(size=(1, 3, 8, 8)), 3, 3, 1, 1)
        F.im2col(rng.normal(size=(1, 3, 8, 8)), 3, 3, 2, 1)
        F.im2col(rng.normal(size=(1, 4, 8, 8)), 3, 3, 1, 1)
        assert F.im2col_cache_info().misses == 3

    def test_cached_indices_are_read_only(self):
        k, i, j, _, _ = F._im2col_indices((1, 2, 6, 6), 3, 3, 1, 0)
        for array in (k, i, j):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 0

    def test_forward_backward_still_exact(self, rng, num_grad):
        """conv2d through the cached indices matches numerical gradients."""
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3)) * 0.5
        out, cols = F.conv2d_forward(x, w, None, stride=1, padding=1)
        # Same geometry again — exercised through the cache hit path.
        out2, _ = F.conv2d_forward(x, w, None, stride=1, padding=1)
        np.testing.assert_array_equal(out, out2)
        grad_out = rng.normal(size=out.shape)
        grad_input, grad_weight, _ = F.conv2d_backward(
            grad_out, x.shape, cols, w, stride=1, padding=1
        )

        def loss():
            result, _ = F.conv2d_forward(x, w, None, stride=1, padding=1)
            return float((result * grad_out).sum())

        np.testing.assert_allclose(grad_input, num_grad(loss, x), atol=1e-5)
        np.testing.assert_allclose(grad_weight, num_grad(loss, w), atol=1e-5)
