"""Tests for Sequential and ResidualBlock composite layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Flatten,
    Linear,
    ReLU,
    ResidualBlock,
    Sequential,
)


class TestSequential:
    def _small_model(self, rng):
        return Sequential(
            [
                Conv2D(1, 2, 3, padding=1, rng=rng, name="c1"),
                ReLU(),
                Flatten(),
                Linear(2 * 4 * 4, 3, rng=rng, name="fc"),
            ]
        )

    def test_forward_backward_shapes(self, rng):
        model = self._small_model(rng)
        x = rng.normal(size=(2, 1, 4, 4))
        out = model.forward(x)
        assert out.shape == (2, 3)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_parameters_collected_from_children(self, rng):
        model = self._small_model(rng)
        # conv weight+bias, linear weight+bias
        assert len(model.parameters()) == 4

    def test_zero_grad_clears_all(self, rng):
        model = self._small_model(rng)
        x = rng.normal(size=(1, 1, 4, 4))
        model.backward(np.ones_like(model.forward(x)))
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = self._small_model(rng)
        model.eval()
        assert all(not layer.training for layer in model.layers)
        model.train()
        assert all(layer.training for layer in model.layers)

    def test_indexing_and_len(self, rng):
        model = self._small_model(rng)
        assert len(model) == 4
        assert isinstance(model[0], Conv2D)

    def test_append(self, rng):
        model = self._small_model(rng)
        model.append(ReLU())
        assert len(model) == 5

    def test_append_rejects_non_layer(self, rng):
        with pytest.raises(TypeError):
            self._small_model(rng).append("not a layer")

    def test_rejects_non_layer_elements(self):
        with pytest.raises(TypeError):
            Sequential([ReLU(), 42])

    def test_whole_model_gradient_check(self, rng, num_grad):
        model = self._small_model(rng)
        x = rng.normal(size=(1, 1, 4, 4))
        out = model.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = model.backward(grad_out)

        def loss():
            return float(np.sum(model.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-6)


class TestResidualBlock:
    def test_identity_skip_forward_shape(self, rng):
        block = ResidualBlock(4, 4, stride=1, rng=rng)
        x = rng.normal(size=(2, 4, 8, 8))
        assert block.forward(x).shape == (2, 4, 8, 8)
        assert block.downsample_conv is None

    def test_projection_skip_when_shape_changes(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        x = rng.normal(size=(2, 4, 8, 8))
        assert block.forward(x).shape == (2, 8, 4, 4)
        assert block.downsample_conv is not None
        assert block.downsample_bn is not None

    def test_backward_shapes(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        x = rng.normal(size=(2, 4, 8, 8))
        out = block.forward(x)
        grad_in = block.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_parameter_count_identity_block(self, rng):
        block = ResidualBlock(4, 4, rng=rng)
        # conv1 (no bias), bn1 gamma+beta, conv2, bn2 gamma+beta = 6 parameters
        assert len(block.parameters()) == 6

    def test_parameter_count_projection_block(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        # plus downsample conv + downsample bn gamma/beta = 9 parameters
        assert len(block.parameters()) == 9

    def test_gradient_check_identity_block(self, rng, num_grad):
        block = ResidualBlock(2, 2, rng=rng)
        x = rng.normal(size=(3, 2, 4, 4))
        out = block.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = block.backward(grad_out)

        def loss():
            return float(np.sum(block.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-5)

    def test_gradient_check_projection_block(self, rng, num_grad):
        block = ResidualBlock(2, 4, stride=2, rng=rng)
        x = rng.normal(size=(3, 2, 4, 4))
        out = block.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = block.backward(grad_out)

        def loss():
            return float(np.sum(block.forward(x) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_in, atol=1e-5)

    def test_children_enumeration(self, rng):
        block = ResidualBlock(2, 4, stride=2, rng=rng)
        children = list(block.children())
        assert len(children) == 8  # conv1 bn1 relu1 conv2 bn2 relu2 + downsample conv/bn
