"""Gradient and shape tests for the numpy functional kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


class TestIm2col:
    def test_roundtrip_is_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        c = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * c))
        rhs = float(np.sum(x * F.col2im(c, x.shape, 3, 3, 1, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, stride=1, padding=0)
        assert cols.shape == (3 * 3 * 3, 2 * 6 * 6)

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(224, 11, 4, 2) == 55
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_conv_output_size_invalid(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_forward_matches_direct_convolution(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out, _ = F.conv2d_forward(x, w, b, stride, padding)
        out_h = F.conv_output_size(7, 3, stride, padding)
        assert out.shape == (2, 4, out_h, out_h)
        # Direct computation of one output element.
        n, f, oh, ow = 1, 2, 1, 1
        x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        patch = x_padded[n, :, oh * stride : oh * stride + 3, ow * stride : ow * stride + 3]
        expected = float(np.sum(patch * w[f]) + b[f])
        assert out[n, f, oh, ow] == pytest.approx(expected, rel=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_backward_matches_numerical_gradient(self, rng, num_grad, stride, padding):
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        out, cols = F.conv2d_forward(x, w, b, stride, padding)
        grad_out = rng.normal(size=out.shape)
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_out, x.shape, cols, w, stride, padding
        )

        def loss():
            return float(np.sum(F.conv2d_forward(x, w, b, stride, padding)[0] * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_x, atol=1e-6)
        np.testing.assert_allclose(num_grad(loss, w), grad_w, atol=1e-6)
        np.testing.assert_allclose(num_grad(loss, b), grad_b, atol=1e-6)

    def test_backward_without_input_grad(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        out, cols = F.conv2d_forward(x, w, None, 1, 1)
        grad_x, grad_w, grad_b = F.conv2d_backward(
            np.ones_like(out), x.shape, cols, w, 1, 1, need_input_grad=False
        )
        assert grad_x is None
        assert grad_w.shape == w.shape


class TestPooling:
    def test_maxpool_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self, rng, num_grad):
        x = rng.normal(size=(2, 2, 4, 4))
        out, argmax = F.maxpool2d_forward(x, 2)
        grad_out = rng.normal(size=out.shape)
        grad_x = F.maxpool2d_backward(grad_out, x.shape, argmax, 2)

        def loss():
            return float(np.sum(F.maxpool2d_forward(x, 2)[0] * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_x, atol=1e-7)

    def test_avgpool_forward_and_backward(self, rng, num_grad):
        x = rng.normal(size=(1, 2, 4, 4))
        out = F.avgpool2d_forward(x, 2)
        assert out.shape == (1, 2, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())
        grad_out = rng.normal(size=out.shape)
        grad_x = F.avgpool2d_backward(grad_out, x.shape, 2)

        def loss():
            return float(np.sum(F.avgpool2d_forward(x, 2) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), grad_x, atol=1e-7)


class TestReLU:
    def test_forward_zeroes_negatives_and_records_mask(self):
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        out, mask = F.relu_forward(x)
        np.testing.assert_array_equal(out, [[0.0, 2.0], [0.0, 0.0]])
        np.testing.assert_array_equal(mask, [[False, True], [False, False]])

    def test_backward_applies_mask(self):
        grad = np.ones((2, 2))
        mask = np.array([[True, False], [False, True]])
        np.testing.assert_array_equal(F.relu_backward(grad, mask), mask.astype(float))


class TestBatchNorm:
    def test_forward_normalises_in_training(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(16, 4, 5, 5))
        gamma, beta = np.ones(4), np.zeros(4)
        running_mean, running_var = np.zeros(4), np.ones(4)
        out, _ = F.batchnorm_forward(
            x, gamma, beta, running_mean, running_var, 0.1, 1e-5, True, (0, 2, 3)
        )
        assert abs(out.mean()) < 1e-7
        assert out.std() == pytest.approx(1.0, abs=1e-3)

    def test_running_stats_updated_only_in_training(self, rng):
        x = rng.normal(size=(8, 3, 4, 4))
        gamma, beta = np.ones(3), np.zeros(3)
        running_mean, running_var = np.zeros(3), np.ones(3)
        F.batchnorm_forward(x, gamma, beta, running_mean, running_var, 0.5, 1e-5, True, (0, 2, 3))
        assert not np.allclose(running_mean, 0.0)
        frozen_mean = running_mean.copy()
        F.batchnorm_forward(x, gamma, beta, running_mean, running_var, 0.5, 1e-5, False, (0, 2, 3))
        np.testing.assert_array_equal(running_mean, frozen_mean)

    def test_backward_matches_numerical_gradient(self, rng, num_grad):
        x = rng.normal(size=(6, 3, 4, 4))
        gamma = rng.normal(size=3) + 1.0
        beta = rng.normal(size=3)

        def forward():
            running_mean, running_var = np.zeros(3), np.ones(3)
            out, cache = F.batchnorm_forward(
                x, gamma, beta, running_mean, running_var, 0.1, 1e-5, True, (0, 2, 3)
            )
            return out, cache

        out, cache = forward()
        grad_out = rng.normal(size=out.shape)
        dx, dgamma, dbeta = F.batchnorm_backward(grad_out, cache)

        def loss():
            return float(np.sum(forward()[0] * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), dx, atol=1e-5)
        np.testing.assert_allclose(num_grad(loss, gamma), dgamma, atol=1e-5)
        np.testing.assert_allclose(num_grad(loss, beta), dbeta, atol=1e-5)


class TestLinearAndLoss:
    def test_linear_backward_matches_numerical(self, rng, num_grad):
        x = rng.normal(size=(4, 5))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=(3,))
        out = F.linear_forward(x, w, b)
        grad_out = rng.normal(size=out.shape)
        dx, dw, db = F.linear_backward(grad_out, x, w)

        def loss():
            return float(np.sum(F.linear_forward(x, w, b) * grad_out))

        np.testing.assert_allclose(num_grad(loss, x), dx, atol=1e-7)
        np.testing.assert_allclose(num_grad(loss, w), dw, atol=1e-7)
        np.testing.assert_allclose(num_grad(loss, b), db, atol=1e-7)

    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(6, 10)) * 50
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)
        assert np.all(probs >= 0)

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, grad = F.cross_entropy_loss(logits, labels)
        assert loss < 1e-6
        assert np.abs(grad).max() < 1e-6

    def test_cross_entropy_gradient_matches_numerical(self, rng, num_grad):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = F.cross_entropy_loss(logits, labels)

        def loss():
            return F.cross_entropy_loss(logits, labels)[0]

        np.testing.assert_allclose(num_grad(loss, logits), grad, atol=1e-6)

    def test_cross_entropy_uniform_logits(self):
        logits = np.zeros((3, 4))
        labels = np.array([0, 1, 2])
        loss, _ = F.cross_entropy_loss(logits, labels)
        assert loss == pytest.approx(np.log(4), rel=1e-9)
