"""Differential tests: grouped/depthwise Conv2D vs a naive nested-loop reference.

The naive reference below implements grouped convolution (forward, dI, dW,
db) straight from the definition with explicit Python loops — no im2col, no
shared code with ``repro.nn.functional`` — and counts every multiply-accumulate
it performs.  It is the ground truth both for the numerics (tolerance 1e-6)
and for the exact MAC accounting of
:class:`~repro.models.spec.ConvLayerSpec`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.spec import ConvLayerSpec, ConvStructure
from repro.nn import functional as F
from repro.nn.layers.conv import Conv2D


def naive_grouped_forward(x, weight, bias, stride, padding, groups):
    """Definition-level grouped convolution; returns (output, mac_count)."""
    batch, channels, height, width = x.shape
    out_channels, group_in, kernel, _ = weight.shape
    group_out = out_channels // groups
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    out = np.zeros((batch, out_channels, out_h, out_w))
    macs = 0
    for n in range(batch):
        for f in range(out_channels):
            base = (f // group_out) * group_in
            for oh in range(out_h):
                for ow in range(out_w):
                    acc = 0.0
                    for c_local in range(group_in):
                        for ki in range(kernel):
                            for kj in range(kernel):
                                acc += (
                                    x_padded[n, base + c_local, oh * stride + ki, ow * stride + kj]
                                    * weight[f, c_local, ki, kj]
                                )
                                macs += 1
                    if bias is not None:
                        acc += bias[f]
                    out[n, f, oh, ow] = acc
    return out, macs


def naive_grouped_backward(grad_out, x, weight, stride, padding, groups):
    """Definition-level grouped backward; returns (dI, dW, db)."""
    batch, channels, height, width = x.shape
    out_channels, group_in, kernel, _ = weight.shape
    group_out = out_channels // groups
    _, _, out_h, out_w = grad_out.shape
    x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    grad_x_padded = np.zeros_like(x_padded)
    grad_weight = np.zeros_like(weight)
    grad_bias = np.zeros(out_channels)
    for n in range(batch):
        for f in range(out_channels):
            base = (f // group_out) * group_in
            for oh in range(out_h):
                for ow in range(out_w):
                    g = grad_out[n, f, oh, ow]
                    grad_bias[f] += g
                    for c_local in range(group_in):
                        for ki in range(kernel):
                            for kj in range(kernel):
                                ih, iw = oh * stride + ki, ow * stride + kj
                                grad_weight[f, c_local, ki, kj] += g * x_padded[n, base + c_local, ih, iw]
                                grad_x_padded[n, base + c_local, ih, iw] += g * weight[f, c_local, ki, kj]
    if padding:
        grad_x = grad_x_padded[:, :, padding:-padding, padding:-padding]
    else:
        grad_x = grad_x_padded
    return grad_x, grad_weight, grad_bias


# (in_channels, out_channels, groups): g = 1, g = 2 and g = C (depthwise).
GROUPINGS = [(4, 6, 1), (4, 6, 2), (4, 4, 4)]
GEOMETRIES = [(1, 0, 5), (1, 1, 6), (2, 1, 7)]  # (stride, padding, in_size)


class TestGroupedConvDifferential:
    @pytest.mark.parametrize("in_channels,out_channels,groups", GROUPINGS)
    @pytest.mark.parametrize("stride,padding,in_size", GEOMETRIES)
    def test_forward_matches_naive(
        self, rng, in_channels, out_channels, groups, stride, padding, in_size
    ):
        x = rng.normal(size=(2, in_channels, in_size, in_size))
        conv = Conv2D(
            in_channels, out_channels, 3, stride=stride, padding=padding,
            groups=groups, rng=rng, name="diff",
        )
        out = conv.forward(x)
        expected, _ = naive_grouped_forward(
            x, conv.weight.data, conv.bias.data, stride, padding, groups
        )
        np.testing.assert_allclose(out, expected, atol=1e-6)

    @pytest.mark.parametrize("in_channels,out_channels,groups", GROUPINGS)
    @pytest.mark.parametrize("stride,padding,in_size", GEOMETRIES)
    def test_backward_matches_naive(
        self, rng, in_channels, out_channels, groups, stride, padding, in_size
    ):
        x = rng.normal(size=(2, in_channels, in_size, in_size))
        conv = Conv2D(
            in_channels, out_channels, 3, stride=stride, padding=padding,
            groups=groups, rng=rng, name="diff",
        )
        out = conv.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = conv.backward(grad_out)
        expected_di, expected_dw, expected_db = naive_grouped_backward(
            grad_out, x, conv.weight.data, stride, padding, groups
        )
        np.testing.assert_allclose(grad_in, expected_di, atol=1e-6)
        np.testing.assert_allclose(conv.weight.grad, expected_dw, atol=1e-6)
        np.testing.assert_allclose(conv.bias.grad, expected_db, atol=1e-6)

    @pytest.mark.parametrize("in_channels,out_channels,groups", GROUPINGS)
    def test_spec_mac_count_matches_naive_exactly(
        self, rng, in_channels, out_channels, groups
    ):
        """Acceptance: grouped MAC counts equal the naive reference's count."""
        x = rng.normal(size=(1, in_channels, 6, 6))
        conv = Conv2D(in_channels, out_channels, 3, padding=1, groups=groups, rng=rng)
        _, macs = naive_grouped_forward(
            x, conv.weight.data, None, 1, 1, groups
        )
        spec = ConvLayerSpec(
            "diff", in_channels, out_channels, 3, 1, 1, 6, 6,
            ConvStructure.CONV_RELU, groups=groups,
        )
        assert spec.forward_macs == macs
        assert spec.weight_count == conv.weight.data.size

    def test_depthwise_gradcheck(self, rng, num_grad):
        """Numerical gradient check of a depthwise convolution."""
        x = rng.normal(size=(1, 3, 5, 5))
        conv = Conv2D(3, 3, 3, padding=1, groups=3, rng=rng, name="dw")

        def loss():
            return float((conv.forward(x) ** 2).sum() / 2.0)

        out = conv.forward(x)
        conv.backward(out)  # dL/dout = out for the 0.5*sum(out^2) loss
        numeric = num_grad(loss, conv.weight.data)
        np.testing.assert_allclose(conv.weight.grad, numeric, atol=1e-5)


class TestGroupedConvValidation:
    def test_rejects_indivisible_groups(self, rng):
        with pytest.raises(ValueError, match="groups"):
            Conv2D(4, 6, 3, groups=3, rng=rng)
        with pytest.raises(ValueError, match="groups"):
            Conv2D(6, 4, 3, groups=3, rng=rng)

    def test_grouped_weight_shape_and_fan_in(self, rng):
        conv = Conv2D(8, 8, 3, groups=8, rng=rng)
        assert conv.weight.data.shape == (8, 1, 3, 3)
        # Depthwise fan-in is K*K (not C*K*K), so the Kaiming std must grow
        # relative to the ungrouped layer's sqrt(2 / (C*K*K)).
        dense = Conv2D(8, 8, 3, groups=1, rng=np.random.default_rng(0))
        assert conv.weight.data.std() > dense.weight.data.std()
        expected_std = np.sqrt(2.0 / 9.0)
        assert conv.weight.data.std() == pytest.approx(expected_std, rel=0.25)

    def test_functional_rejects_wrong_channel_count(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        weight = rng.normal(size=(6, 1, 3, 3))  # expects 2 channels/group * 3 groups
        with pytest.raises(ValueError):
            F.conv2d_forward(x, weight, None, 1, 1, groups=3)
