"""Benchmark E-F8 — regenerate Fig. 8 (training latency per sample and speedup).

Simulates a full training iteration of the paper's AlexNet / ResNet-18 /
ResNet-34 geometries (CIFAR and ImageNet) on SparseTrain and on the dense
Eyeriss-like baseline (168 PEs, 386 KB buffer each), using per-layer operand
densities measured from reduced training runs with pruning at p = 90%.

Prints the same series the paper plots: baseline latency, SparseTrain latency
and speedup per workload, plus the average.  The assertions encode the
figure's shape: every workload speeds up, AlexNet/CIFAR-10 benefits the most,
and the average sits in the paper's 2-3x band.
"""

from __future__ import annotations

import pytest

from repro.eval.fig8 import run_fig8

WORKLOADS = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "CIFAR-100"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
)


@pytest.mark.benchmark(group="fig8")
def test_fig8_training_latency_and_speedup(benchmark, bench_scale, measured_densities, capsys):
    result = benchmark.pedantic(
        run_fig8,
        kwargs={
            "workloads": WORKLOADS,
            "scale": bench_scale,
            "measured": measured_densities,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.format())
        print(
            f"paper: up to ~4.5x (AlexNet/CIFAR-10), ~2.7x average — "
            f"measured: max {result.max_speedup:.2f}x, average {result.mean_speedup:.2f}x"
        )

    # Shape assertions (who wins, by roughly what factor).
    assert all(speedup > 1.3 for speedup in result.speedups.values())
    assert 1.8 <= result.mean_speedup <= 4.0
    assert result.max_speedup == result.speedups["AlexNet/CIFAR-10"]
    assert result.speedups["AlexNet/CIFAR-10"] > result.speedups["ResNet-18/CIFAR-10"]
    # Absolute latency ordering: ImageNet geometries are far slower than CIFAR.
    imagenet = result.workload("ResNet-18/ImageNet").comparison.sparsetrain.latency_us
    cifar = result.workload("ResNet-18/CIFAR-10").comparison.sparsetrain.latency_us
    assert imagenet > 2.0 * cifar


@pytest.mark.benchmark(group="fig8")
def test_fig8_speedup_requires_sparsity(benchmark, bench_scale, measured_densities, capsys):
    """Control experiment: with pruning disabled (natural sparsity only for the
    AlexNet family, none for the BN-based ResNet family) the ResNet speedup
    collapses towards 1x, confirming that the Fig. 8 gains come from the
    gradient sparsity the algorithm creates."""
    from repro.eval.fig8 import measure_model_densities

    natural = {
        "AlexNet": measure_model_densities("AlexNet", 0.0, bench_scale),
        "ResNet": measure_model_densities("ResNet-18", 0.0, bench_scale),
    }
    result = benchmark.pedantic(
        run_fig8,
        kwargs={
            "workloads": (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10")),
            "scale": bench_scale,
            "measured": natural,
        },
        rounds=1,
        iterations=1,
    )
    pruned = run_fig8(
        workloads=(("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10")),
        scale=bench_scale,
        measured=measured_densities,
    )
    with capsys.disabled():
        print()
        print("without pruning:")
        print(result.format())
        print("with pruning (p=90%):")
        print(pruned.format())

    assert pruned.speedups["ResNet-18/CIFAR-10"] > result.speedups["ResNet-18/CIFAR-10"]
