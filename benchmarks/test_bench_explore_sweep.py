"""Benchmark E-DSE — the design-space exploration engine at survey scale.

Times the 48-point PE x buffer x pruning-rate grid over two workloads (96
evaluations) through the exploration engine, and the same sweep again from a
warm persistent cache.  The printed output is the per-workload Pareto
frontier — the artefact a design-space survey is run for.
"""

from __future__ import annotations

import pytest

from repro.explore.cache import ResultCache
from repro.explore.engine import ExplorationEngine, points_for
from repro.explore.pareto import pareto_by_workload
from repro.explore.report import format_frontier
from repro.explore.space import paper_neighborhood_space

WORKLOADS = (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10"))


@pytest.fixture(scope="module")
def sweep_points():
    return points_for(paper_neighborhood_space(), WORKLOADS)


@pytest.mark.benchmark(group="explore-sweep")
def test_grid_sweep(benchmark, capsys, sweep_points):
    engine = ExplorationEngine(cache=None, parallel=True)
    records = benchmark.pedantic(engine.run, args=(sweep_points,), rounds=1, iterations=1)
    assert len(records) == len(sweep_points)

    frontiers = pareto_by_workload(records)
    with capsys.disabled():
        print()
        for workload in sorted(frontiers):
            print(f"[{workload}]")
            print(format_frontier(frontiers[workload]))
        # Non-trivial frontier: the latency/area trade-off keeps several PE
        # counts alive for each workload.
        for frontier in frontiers.values():
            assert len(frontier) > 1
            assert len({record.num_pes for record in frontier}) > 1


@pytest.mark.benchmark(group="explore-sweep")
def test_cached_sweep(benchmark, capsys, sweep_points, tmp_path):
    cache_path = tmp_path / "cache.jsonl"
    warm = ExplorationEngine(cache=ResultCache(cache_path), parallel=True)
    warm.run(sweep_points)

    def cached_pass():
        engine = ExplorationEngine(cache=ResultCache(cache_path), parallel=False)
        records = engine.run(sweep_points)
        assert engine.stats.evaluated == 0
        assert engine.stats.cache_hits == len(sweep_points)
        return records

    records = benchmark.pedantic(cached_pass, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n  cached pass: {len(records)} records, 0 simulated")
