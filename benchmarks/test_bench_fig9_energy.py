"""Benchmark E-F9 — regenerate Fig. 9 (energy per sample, breakdown, efficiency).

Prints, per workload, the baseline and SparseTrain energy per training sample,
the per-component breakdown (combinational / register / SRAM / DRAM /
leakage), the SRAM share of the baseline and the component-wise reductions —
the quantities the paper's Fig. 9 and its discussion report.

The assertions encode the paper's claims: 1.5-2.8x efficiency (average ~2.2x),
SRAM dominating the baseline energy, SRAM energy reduced by tens of percent
and combinational energy reduced even more.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.fig8 import run_fig8
from repro.eval.fig9 import run_fig9

WORKLOADS = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "CIFAR-100"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
)


@pytest.mark.benchmark(group="fig9")
def test_fig9_energy_breakdown_and_efficiency(benchmark, bench_scale, measured_densities, capsys):
    fig8 = run_fig8(workloads=WORKLOADS, scale=bench_scale, measured=measured_densities)
    result = benchmark.pedantic(run_fig9, kwargs={"fig8_result": fig8}, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(result.format())
        print(
            f"paper: 1.5x-2.8x (avg ~2.2x) efficiency, baseline SRAM share 62-71% — "
            f"measured: avg {result.mean_efficiency:.2f}x, SRAM share "
            f"{100 * float(np.mean(list(result.baseline_sram_fractions.values()))):.1f}%"
        )

    # Efficiency gains for every workload, average in the paper's band (we
    # accept a slightly wider band because densities are measured, not taken
    # from the paper).
    assert all(eff > 1.2 for eff in result.efficiencies.values())
    assert 1.4 <= result.mean_efficiency <= 3.0

    for name in result.efficiencies:
        # SRAM dominates the baseline's energy.
        assert result.baseline_sram_fractions[name] > 0.45
        # SparseTrain reduces SRAM traffic, and combinational energy shrinks
        # even more (the paper: 30-59% vs 53-88%).
        assert result.sram_reductions[name] > 0.05
        assert result.combinational_reductions[name] > 0.5
        assert result.combinational_reductions[name] > result.sram_reductions[name]


@pytest.mark.benchmark(group="fig9")
def test_fig9_efficiency_robust_to_energy_constants(benchmark, bench_scale, measured_densities, capsys):
    """The efficiency conclusion must not hinge on the exact pJ constants."""
    from repro.arch.energy import EnergyModel
    from repro.eval.fig8 import run_fig8 as run

    def sweep():
        efficiencies = {}
        for label, model in (
            ("default", EnergyModel()),
            ("sram x2", EnergyModel().with_overrides(sram_pj=EnergyModel().sram_pj * 2)),
            ("dram x2", EnergyModel().with_overrides(dram_pj=EnergyModel().dram_pj * 2)),
        ):
            fig8 = run(
                workloads=(("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10")),
                scale=bench_scale,
                measured=measured_densities,
                energy_model=model,
            )
            fig9 = run_fig9(fig8_result=fig8)
            efficiencies[label] = fig9.mean_efficiency
        return efficiencies

    efficiencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for label, value in efficiencies.items():
            print(f"  energy model {label:<10} -> mean efficiency {value:.2f}x")
    assert all(value > 1.2 for value in efficiencies.values())
