"""Benchmark E-A2 — architecture sweeps (pruning rate, PE count, energy constants).

These quantify the design-space claims DESIGN.md calls out:

* speedup and energy efficiency grow with the target pruning rate,
* the SparseTrain-vs-baseline speedup is roughly independent of the PE count
  (both architectures scale together until DRAM bandwidth dominates),
* the efficiency conclusion survives large changes of the energy constants.
"""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    run_energy_sensitivity,
    run_pe_sweep,
    run_pruning_rate_sweep,
)


@pytest.mark.benchmark(group="ablation-sweeps")
def test_pruning_rate_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        run_pruning_rate_sweep,
        kwargs={"pruning_rates": (0.0, 0.5, 0.7, 0.8, 0.9, 0.99)},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(f"{'p':>6}{'speedup':>10}{'efficiency':>12}")
        for point in points:
            print(f"{point.parameter:>6.2f}{point.speedup:>9.2f}x{point.energy_efficiency:>11.2f}x")

    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    assert speedups[0] > 1.0          # natural sparsity alone already helps
    assert speedups[-1] > speedups[0] * 1.2


@pytest.mark.benchmark(group="ablation-sweeps")
def test_pe_count_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        run_pe_sweep,
        kwargs={"pe_counts": (42, 84, 168, 336)},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(f"{'PEs':>6}{'speedup':>10}{'efficiency':>12}")
        for point in points:
            print(f"{int(point.parameter):>6}{point.speedup:>9.2f}x{point.energy_efficiency:>11.2f}x")

    speedups = [p.speedup for p in points]
    assert all(s > 1.5 for s in speedups)
    # Speedup stays within a factor ~2 band across an 8x range of PE counts.
    assert max(speedups) / min(speedups) < 2.0


@pytest.mark.benchmark(group="ablation-sweeps")
def test_energy_constant_sensitivity(benchmark, capsys):
    def sweep():
        return {
            "sram_pj": run_energy_sensitivity(scale_factors=(0.5, 1.0, 2.0, 4.0), component="sram_pj"),
            "dram_pj": run_energy_sensitivity(scale_factors=(0.5, 1.0, 2.0, 4.0), component="dram_pj"),
            "mac_pj": run_energy_sensitivity(scale_factors=(0.5, 1.0, 2.0, 4.0), component="mac_pj"),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for component, points in results.items():
            values = ", ".join(f"x{p.parameter:g}: {p.energy_efficiency:.2f}" for p in points)
            print(f"  {component:<8} -> efficiency {values}")

    for points in results.values():
        assert all(p.energy_efficiency > 1.2 for p in points)
