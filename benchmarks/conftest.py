"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artefacts (Table I,
Table II, Fig. 8, Fig. 9) or one of the ablations documented in DESIGN.md.
The printed output of each benchmark is the reproduced table/figure data; the
timing measured by pytest-benchmark is the cost of regenerating it.

Density measurements (which require training reduced models) are shared
across benchmarks through session-scoped fixtures so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.eval.common import ExperimentScale
from repro.eval.fig8 import measure_model_densities


# Benchmark-friendly scale: small enough to finish in seconds per benchmark,
# large enough that the measured trends are stable.
BENCH_SCALE = ExperimentScale(
    num_samples=320,
    num_classes=4,
    image_size=16,
    epochs=2,
    batch_size=32,
    width_scale=0.15,
    resnet_blocks=(1, 1),
    resnet_width=8,
    seed=11,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def measured_densities():
    """Measured per-layer densities for both model families (p = 90%)."""
    return {
        "AlexNet": measure_model_densities("AlexNet", 0.9, BENCH_SCALE),
        "ResNet": measure_model_densities("ResNet-18", 0.9, BENCH_SCALE),
    }
