"""Benchmark E-T1 — regenerate Table I (sparsity of the training data types).

Prints the measured density and dense/sparse classification of the six data
types (W, dW, I, dI, O, dO) for a reduced ResNet-18 trained with gradient
pruning, and checks the classification matches the paper's Table I.
"""

from __future__ import annotations

import pytest

from repro.eval.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_data_type_sparsity(benchmark, bench_scale, capsys):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"model_name": "ResNet-18", "pruning_rate": 0.9, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.format())
        print(f"matches paper classification: {result.matches_paper()}")

    assert result.matches_paper()
    assert result.row("I").mean_density < 0.75
    assert result.row("dO").mean_density < 0.75
    assert result.row("W").mean_density > 0.99


@pytest.mark.benchmark(group="table1")
def test_table1_alexnet_natural_sparsity(benchmark, bench_scale, capsys):
    """AlexNet without pruning: natural sparsity alone already makes I and dO sparse."""
    result = benchmark.pedantic(
        run_table1,
        kwargs={"model_name": "AlexNet", "pruning_rate": 0.0, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.format())

    assert result.row("I").classification == "sparse"
    assert result.row("dO").classification == "sparse"
    assert result.row("W").classification == "dense"
    assert result.row("O").classification == "dense"
