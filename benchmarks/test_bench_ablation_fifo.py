"""Benchmark E-A1 — FIFO threshold prediction ablation (paper Section III-B).

The paper's hardware prunes gradients with a threshold *predicted* from the
previous NF batches so that gradients can be pruned in a single streaming
pass.  This ablation sweeps the FIFO depth and reports the prediction error
against the exact per-batch threshold and the realised density, confirming
the prediction scheme loses essentially nothing versus the two-pass oracle.
"""

from __future__ import annotations

import pytest

from repro.eval.ablations import run_fifo_ablation


@pytest.mark.benchmark(group="ablation-fifo")
def test_fifo_depth_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        run_fifo_ablation,
        kwargs={
            "fifo_depths": (1, 2, 5, 10, 20),
            "target_sparsity": 0.9,
            "num_batches": 96,
            "batch_elements": 8192,
            "sigma_drift": 0.02,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        header = f"{'NF':>4}{'mean err':>12}{'max err':>12}{'density':>10}{'target':>10}"
        print(header)
        print("-" * len(header))
        for point in points:
            print(
                f"{point.fifo_depth:>4}{point.mean_prediction_error:>12.4f}"
                f"{point.max_prediction_error:>12.4f}{point.mean_density_after:>10.3f}"
                f"{point.target_density:>10.3f}"
            )

    for point in points:
        # Prediction tracks the exact threshold within a few percent ...
        assert point.mean_prediction_error < 0.1
        # ... so the realised density matches the analytic expectation.
        assert abs(point.mean_density_after - point.target_density) < 0.08


@pytest.mark.benchmark(group="ablation-fifo")
def test_fifo_prediction_under_fast_drift(benchmark, capsys):
    """With a rapidly drifting gradient scale a deep FIFO lags more: the error
    grows with depth, which is why the paper keeps NF small (NF << N)."""
    points = benchmark.pedantic(
        run_fifo_ablation,
        kwargs={
            "fifo_depths": (1, 20),
            "target_sparsity": 0.9,
            "num_batches": 96,
            "batch_elements": 4096,
            "sigma_drift": 0.10,
        },
        rounds=1,
        iterations=1,
    )
    shallow, deep = points
    with capsys.disabled():
        print()
        print(
            f"fast drift: NF=1 error {shallow.mean_prediction_error:.3f}, "
            f"NF=20 error {deep.mean_prediction_error:.3f}"
        )
    assert deep.mean_prediction_error >= shallow.mean_prediction_error
