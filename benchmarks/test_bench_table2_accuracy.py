"""Benchmark E-T2 — regenerate Table II (accuracy & gradient density vs pruning rate).

Trains reduced AlexNet and ResNet-18 models on the synthetic CIFAR-10 stand-in
at the paper's pruning rates and prints the accuracy / rho_nnz grid in the
paper's layout.  The assertions encode the table's qualitative claims:
accuracy survives pruning up to p = 90% and the gradient density drops
severalfold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.table2 import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_accuracy_and_density(benchmark, bench_scale, capsys):
    result = benchmark.pedantic(
        run_table2,
        kwargs={
            "models": ("AlexNet", "ResNet-18"),
            "datasets": ("CIFAR-10",),
            "pruning_rates": (None, 0.7, 0.8, 0.9, 0.99),
            "scale": bench_scale,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.format())
        print(f"max accuracy drop at p<=90%: {result.max_accuracy_drop(0.9) * 100:.2f} points")

    # Claim 1: accuracy essentially preserved for p <= 90%.
    assert result.max_accuracy_drop(max_rate=0.9) < 0.20

    # Claim 2: pruning reduces the gradient density substantially for the
    # BN-based model (whose unpruned dO is dense).
    resnet_base = result.baseline("ResNet-18", "CIFAR-10")
    resnet_p90 = result.cell("ResNet-18", "CIFAR-10", 0.9)
    assert resnet_base.grad_density > 0.9
    assert resnet_p90.grad_density < 0.6
    assert resnet_base.grad_density / resnet_p90.grad_density > 1.8

    # Claim 3: higher pruning rates give (weakly) lower density.
    densities = [
        result.cell("ResNet-18", "CIFAR-10", rate).grad_density for rate in (0.7, 0.8, 0.9, 0.99)
    ]
    assert densities[-1] <= densities[0] + 0.05


@pytest.mark.benchmark(group="table2")
def test_table2_deeper_network_gets_sparser_gradients(benchmark, bench_scale, capsys):
    """Paper claim: deeper networks obtain relatively lower gradient density."""
    result = benchmark.pedantic(
        run_table2,
        kwargs={
            "models": ("ResNet-18", "ResNet-34"),
            "datasets": ("CIFAR-10",),
            "pruning_rates": (0.9,),
            "scale": bench_scale,
        },
        rounds=1,
        iterations=1,
    )
    shallow = result.cell("ResNet-18", "CIFAR-10", 0.9).grad_density
    deep = result.cell("ResNet-34", "CIFAR-10", 0.9).grad_density
    with capsys.disabled():
        print()
        print(f"rho_nnz at p=90%: ResNet-18-mini {shallow:.3f}  ResNet-34-mini {deep:.3f}")
    assert deep <= shallow + 0.08
