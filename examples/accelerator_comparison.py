#!/usr/bin/env python3
"""Fig. 8 / Fig. 9 style study: SparseTrain vs the dense Eyeriss-like baseline.

Pipeline:

1. train reduced AlexNet / ResNet models on synthetic data with pruning
   enabled and *measure* the per-layer operand densities;
2. map the measured densities onto the paper's full-size AlexNet /
   ResNet-18 / ResNet-34 layer geometries (CIFAR and ImageNet);
3. compile sparse and dense training programs and simulate them on the
   SparseTrain architecture and the dense baseline (168 PEs, 386 KB buffer);
4. print per-sample latency, speedup, energy breakdown and efficiency —
   the data behind the paper's Fig. 8 and Fig. 9.

Run with:  python examples/accelerator_comparison.py
"""

from __future__ import annotations

import argparse

from repro.eval import ExperimentScale, run_fig8, run_fig9
from repro.eval.fig8 import PAPER_FIG8_WORKLOADS, QUICK_FIG8_WORKLOADS
from repro.sim import format_breakdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all-workloads", action="store_true",
                        help="simulate the full 9-workload grid of the paper")
    parser.add_argument("--pruning-rate", type=float, default=0.9,
                        help="target pruning rate p used when measuring densities")
    args = parser.parse_args()

    workloads = PAPER_FIG8_WORKLOADS if args.all_workloads else QUICK_FIG8_WORKLOADS
    scale = ExperimentScale.quick()

    print("=== Fig. 8: training latency per sample and speedup ===")
    fig8 = run_fig8(workloads=workloads, pruning_rate=args.pruning_rate, scale=scale)
    print(fig8.format())
    print(f"\npaper: up to ~4.5x (AlexNet/CIFAR-10), average ~2.7x")
    print(f"here : up to {fig8.max_speedup:.2f}x, average {fig8.mean_speedup:.2f}x")

    print("\n=== Fig. 9: energy per sample and efficiency ===")
    fig9 = run_fig9(fig8_result=fig8)
    for workload in fig9.workloads:
        print(format_breakdown(workload))
    print(f"\npaper: 1.5-2.8x energy efficiency (average ~2.2x), "
          f"baseline SRAM share 62-71%")
    print(f"here : average {fig9.mean_efficiency:.2f}x")


if __name__ == "__main__":
    main()
