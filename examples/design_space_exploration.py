#!/usr/bin/env python3
"""Design-space exploration: sweep the architecture grid, extract the frontier.

Evaluates a PE-count x buffer-size x pruning-rate grid (the paper's design
point sits in the middle of it) over two workloads through the parallel,
cached exploration engine, then prints the per-workload latency/energy/area
Pareto frontiers and the best point under each single objective.

Run with:  python examples/design_space_exploration.py
           python examples/design_space_exploration.py --sample 24   (random subset)
           python examples/design_space_exploration.py --no-cache    (force re-simulation)

A second run is near-instant: results are cached in .repro-cache/.
The same sweep is available as `python -m repro sweep` / `python -m repro pareto`.
"""

from __future__ import annotations

import argparse
import time

from repro.explore import (
    ExplorationEngine,
    ResultCache,
    best_point,
    format_frontier,
    paper_neighborhood_space,
    pareto_by_workload,
    points_for,
)

WORKLOADS = (("AlexNet", "CIFAR-10"), ("ResNet-18", "CIFAR-10"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sample", type=int, default=None,
                        help="evaluate a seeded random subset of the grid")
    parser.add_argument("--serial", action="store_true",
                        help="evaluate in-process instead of a worker pool")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache")
    args = parser.parse_args()

    space = paper_neighborhood_space()
    points = points_for(space, WORKLOADS, sample=args.sample)
    print(f"design space: {space.size} points x {len(WORKLOADS)} workloads "
          f"-> {len(points)} evaluations\n")

    cache = None if args.no_cache else ResultCache()
    engine = ExplorationEngine(cache=cache, parallel=not args.serial)
    start = time.perf_counter()
    records = engine.run(points)
    elapsed = time.perf_counter() - start
    print(f"{engine.stats.describe()} in {elapsed:.2f}s\n")

    for workload, frontier in sorted(pareto_by_workload(records).items()):
        group = [r for r in records if r.workload == workload]
        print(f"[{workload}]")
        print(format_frontier(frontier))
        fastest = best_point(group, "latency_us")
        frugal = best_point(group, "energy_uj")
        print(f"  fastest: {fastest.num_pes} PEs / {fastest.buffer_kib} KiB "
              f"@ p={fastest.pruning_rate:.2f} ({fastest.latency_us:.1f} us)")
        print(f"  lowest energy: {frugal.num_pes} PEs / {frugal.buffer_kib} KiB "
              f"@ p={frugal.pruning_rate:.2f} ({frugal.energy_uj:.1f} uJ)\n")


if __name__ == "__main__":
    main()
