#!/usr/bin/env python3
"""Table II style study: accuracy and gradient density versus pruning rate.

Trains the same reduced AlexNet-style model once per pruning rate
(baseline, 70%, 80%, 90%, 99%) with identical seeds and hyper-parameters and
prints the accuracy / rho_nnz grid — the reproduction of the paper's Table II
at laptop scale.

Run with:  python examples/pruning_rate_study.py          (quick, ~1 minute)
           python examples/pruning_rate_study.py --full   (larger models/data)
"""

from __future__ import annotations

import argparse

from repro.eval import ExperimentScale, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the larger 'thorough' experiment scale")
    parser.add_argument("--models", nargs="+", default=["AlexNet", "ResNet-18"],
                        help="model families to evaluate")
    parser.add_argument("--datasets", nargs="+", default=["CIFAR-10"],
                        help="dataset stand-ins to evaluate (CIFAR-10, CIFAR-100)")
    args = parser.parse_args()

    scale = ExperimentScale.thorough() if args.full else ExperimentScale.quick()
    print(f"running Table II grid at scale: {scale}\n")

    result = run_table2(
        models=tuple(args.models),
        datasets=tuple(args.datasets),
        scale=scale,
    )
    print(result.format())
    print()
    print(f"largest accuracy drop for p <= 90%: "
          f"{result.max_accuracy_drop(0.9) * 100:.2f} percentage points")
    print("paper claim: accuracy is essentially unchanged up to p = 90%, and the")
    print("gradient density drops by 3-10x for BN-based networks.")


if __name__ == "__main__":
    main()
