#!/usr/bin/env python3
"""Quickstart: train a small CNN with SparseTrain's gradient pruning.

This example shows the minimal end-to-end use of the library's algorithm
side: build a model, attach the stochastic activation-gradient pruning
(`PruningController`) and a sparsity profiler, train on a synthetic dataset
and inspect accuracy and the achieved gradient density.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_cifar_like
from repro.models import build_resnet
from repro.nn import SGD, Trainer
from repro.pruning import PruningConfig, PruningController
from repro.sparsity import SparsityProfiler


def main() -> None:
    # 1. A synthetic, CIFAR-shaped classification task (stands in for CIFAR-10).
    dataset = make_cifar_like(num_samples=640, num_classes=4, image_size=16,
                              rng=np.random.default_rng(0))
    train, test = dataset.split(0.8, np.random.default_rng(1))
    print(f"dataset: {len(train)} train / {len(test)} test samples, "
          f"{train.num_classes} classes, images {train.image_shape}")

    # 2. A reduced ResNet-style model (Conv-BN-ReLU blocks, residual skips).
    model = build_resnet(num_classes=train.num_classes, image_size=16,
                         blocks_per_stage=(1, 1), base_width=16,
                         rng=np.random.default_rng(2))

    # 3. Attach SparseTrain's layer-wise gradient pruning (p = 90%, FIFO
    #    threshold prediction) and a profiler that measures what the
    #    accelerator would see.
    pruning = PruningController(model, PruningConfig(target_sparsity=0.9, fifo_depth=5))
    profiler = SparsityProfiler(model)

    # 4. Train exactly as usual — the pruning lives in gradient hooks.
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4),
        callbacks=[pruning, profiler],
    )
    history = trainer.fit(
        train.images, train.labels,
        epochs=5, batch_size=32,
        test_images=test.images, test_labels=test.labels,
        shuffle_rng=np.random.default_rng(3),
    )

    # 5. Inspect the results.
    print("\nepoch  train_loss  train_acc  test_acc")
    for stats in history.epochs:
        print(f"{stats.epoch:>5}  {stats.train_loss:>10.4f}  {stats.train_accuracy:>9.3f}"
              f"  {stats.test_accuracy:>8.3f}")

    report = pruning.density_report()
    print(f"\nactivation-gradient density before pruning: {report.mean_density_before:.3f}")
    print(f"activation-gradient density after  pruning: {report.mean_density_after:.3f}")
    print(f"density reduction: {report.density_reduction:.1f}x "
          f"(paper reports 3-10x on full-size models)")

    print("\nper-layer densities seen by the accelerator (I / dO / dI):")
    for name, stats in profiler.mean_densities().items():
        print(f"  {name:<24} I={stats['input']:.2f}  dO={stats['grad_output']:.2f}"
              f"  dI={stats['grad_input']:.2f}")


if __name__ == "__main__":
    main()
