#!/usr/bin/env python3
"""Walkthrough of the 1-D convolution dataflow and the PE model.

Takes one small convolution layer, decomposes its Forward / GTA / GTW steps
into SRC / MSRC / OSRC row operations, executes them on the PE model (with
and without zero skipping) and verifies the results against the dense
reference convolution — while printing the cycle and MAC counts that explain
where SparseTrain's speedup comes from.

Run with:  python examples/dataflow_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import Controller, PE, sparsetrain_config, dense_baseline_config
from repro.dataflow import (
    accumulate_forward,
    accumulate_gta,
    accumulate_gtw,
    decompose_forward,
    decompose_gta,
    decompose_gtw,
)
from repro.models import ConvLayerSpec
from repro.models.spec import ConvStructure
from repro.nn import functional as F
from repro.sparsity import density


def run_step(name: str, ops, reference, accumulate):
    """Execute ops on a sparse and a dense PE; report cycles/MACs and check results."""
    sparse_pe = PE(zero_skipping=True)
    dense_pe = PE(zero_skipping=False)
    sparse_results = [sparse_pe.run(op)[0] for op in ops]
    dense_results = [dense_pe.run(op)[0] for op in ops]

    sparse_out = accumulate(sparse_results)
    dense_out = accumulate(dense_results)
    assert np.allclose(dense_out, reference if name != "GTA (masked)" else dense_out)
    print(f"  {name:<14} ops={len(ops):>5}  "
          f"sparse: {sparse_pe.total_stats.cycles:>7} cycles / {sparse_pe.total_stats.macs:>8} MACs   "
          f"dense: {dense_pe.total_stats.cycles:>7} cycles / {dense_pe.total_stats.macs:>8} MACs   "
          f"cycle reduction {dense_pe.total_stats.cycles / max(sparse_pe.total_stats.cycles, 1):.2f}x")
    assert np.allclose(sparse_out, reference), f"{name}: sparse PE result mismatch"
    return sparse_out


def main() -> None:
    rng = np.random.default_rng(0)
    layer = ConvLayerSpec("demo", 8, 16, 3, 1, 1, 16, 16, ConvStructure.CONV_RELU)

    # Realistic operands: ReLU-sparse input, pruned-sparse output gradient,
    # ReLU mask over the input positions.
    x = np.maximum(rng.normal(size=(8, 16, 16)), 0.0)
    w = rng.normal(size=(16, 8, 3, 3)) * 0.1
    grad_out = rng.normal(size=(16, 16, 16)) * (rng.random((16, 16, 16)) < 0.15)
    mask = x > 0

    print(f"layer: {layer.in_channels}x{layer.in_height}x{layer.in_width} -> "
          f"{layer.out_channels}x{layer.out_height}x{layer.out_width}, K={layer.kernel}")
    print(f"operand densities: I={density(x):.2f}  dO={density(grad_out):.2f}  "
          f"mask={mask.mean():.2f}\n")

    # Dense references computed with the im2col kernels.
    ref_out, cols = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
    ref_di, ref_dw, _ = F.conv2d_backward(grad_out[None], (1, *x.shape), cols, w,
                                          layer.stride, layer.padding)

    print("per-step comparison (one PE):")
    fwd_ops = decompose_forward(layer, x, w)
    run_step("Forward (SRC)", fwd_ops, ref_out[0],
             lambda results: accumulate_forward(layer, fwd_ops, results))

    gta_ops = decompose_gta(layer, grad_out, w, mask=mask)
    run_step("GTA (masked)", gta_ops, ref_di[0] * mask,
             lambda results: accumulate_gta(layer, gta_ops, results))

    gtw_ops = decompose_gtw(layer, grad_out, x)
    run_step("GTW (OSRC)", gtw_ops, ref_dw,
             lambda results: accumulate_gtw(layer, gtw_ops, results))

    # Whole-array scheduling: the controller spreads the row operations over
    # PE groups; the critical path shrinks with the array size.
    print("\nforward step scheduled on the PE array:")
    for num_pes in (12, 42, 168):
        controller = Controller(sparsetrain_config(num_pes=num_pes))
        schedule = controller.run_ops(fwd_ops)
        print(f"  {num_pes:>4} PEs -> {schedule.cycles:>6} cycles "
              f"(utilisation {schedule.utilization:.2f})")

    dense_controller = Controller(dense_baseline_config(num_pes=168))
    dense_schedule = dense_controller.run_ops(fwd_ops)
    sparse_schedule = Controller(sparsetrain_config(num_pes=168)).run_ops(fwd_ops)
    print(f"\n168-PE dense baseline: {dense_schedule.cycles} cycles; "
          f"SparseTrain: {sparse_schedule.cycles} cycles "
          f"-> {dense_schedule.cycles / sparse_schedule.cycles:.2f}x faster on this layer")


if __name__ == "__main__":
    main()
